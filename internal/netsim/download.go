package netsim

import (
	"fmt"

	"videodvfs/internal/cpu"
	"videodvfs/internal/sim"
)

// DownloaderConfig tunes the segment downloader.
type DownloaderConfig struct {
	// RTT is the request round-trip added before each fetch's data flows.
	RTT sim.Time
	// CyclesPerBit is the CPU cost of network-stack processing, submitted
	// to the core as the data arrives.
	CyclesPerBit float64
	// NetChunk is the granularity at which network CPU work is submitted
	// (span of download time per CPU job).
	NetChunk sim.Time
}

// DefaultDownloaderConfig returns typical values: 70 ms RTT, ≈1 cycle/bit
// stack cost, 100 ms CPU-job chunking.
func DefaultDownloaderConfig() DownloaderConfig {
	return DownloaderConfig{
		RTT:          70 * sim.Millisecond,
		CyclesPerBit: 1.0,
		NetChunk:     100 * sim.Millisecond,
	}
}

// Validate checks the configuration.
func (c DownloaderConfig) Validate() error {
	if c.RTT < 0 {
		return fmt.Errorf("downloader: negative RTT")
	}
	if c.CyclesPerBit < 0 {
		return fmt.Errorf("downloader: negative cycles/bit")
	}
	if c.NetChunk <= 0 {
		return fmt.Errorf("downloader: chunk %v not positive", c.NetChunk)
	}
	return nil
}

// Downloader fetches byte blobs over a bandwidth trace while driving the
// radio state machine and charging network-stack CPU cycles to the core.
// Fetches are serialized (players fetch one segment at a time).
type Downloader struct {
	eng   *sim.Engine
	bw    Bandwidth
	radio *Radio
	core  *cpu.Core
	cfg   DownloaderConfig

	busy    bool
	queue   []fetchReq
	qhead   int
	bitsRx  float64
	fetches int
	subErr  error

	// Current fetch state. Fetches are serialized, so fields plus the
	// pre-bound callbacks below replace per-fetch closures on the hot path.
	curBits  float64 // payload bits still to stream
	curDone  func(now sim.Time)
	spanBits float64 // bits carried by the chunk in flight

	readyFn  func() // radio reached DCH
	rttFn    func() // request RTT elapsed
	resumeFn func() // bandwidth outage ended
	chunkFn  func() // mid-stream chunk completed
	finishFn func() // final chunk completed

	pool cpu.JobPool

	onActive func(now sim.Time, active bool)
}

type fetchReq struct {
	bits   float64
	onDone func(now sim.Time)
}

// NewDownloader wires a downloader to its substrates. core may be nil to
// skip CPU accounting (used by radio-only experiments).
func NewDownloader(eng *sim.Engine, bw Bandwidth, radio *Radio, core *cpu.Core, cfg DownloaderConfig) (*Downloader, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if bw == nil || radio == nil {
		return nil, fmt.Errorf("downloader: bandwidth and radio are required")
	}
	d := &Downloader{eng: eng, bw: bw, radio: radio, core: core, cfg: cfg}
	d.readyFn = d.ready
	d.rttFn = d.startStream
	d.resumeFn = d.startStream
	d.chunkFn = d.chunkDone
	d.finishFn = d.finish
	return d, nil
}

// Reset rewinds the downloader to the state NewDownloader would construct
// for (bw, cfg), keeping its allocations: the fetch queue backing array,
// the job pool, and the pre-bound streaming callbacks survive. The
// activity listener is dropped (the next run re-registers its own). The
// owning engine and radio must be reset alongside; any in-flight fetch is
// simply forgotten here.
func (d *Downloader) Reset(bw Bandwidth, cfg DownloaderConfig) error {
	if err := cfg.Validate(); err != nil {
		return err
	}
	if bw == nil {
		return fmt.Errorf("downloader: bandwidth is required")
	}
	d.bw = bw
	d.cfg = cfg
	d.busy = false
	for i := range d.queue {
		d.queue[i] = fetchReq{}
	}
	d.queue = d.queue[:0]
	d.qhead = 0
	d.bitsRx = 0
	d.fetches = 0
	d.subErr = nil
	d.curBits = 0
	d.curDone = nil
	d.spanBits = 0
	d.onActive = nil
	return nil
}

// OnActive registers a listener for download activity transitions (used by
// the network-coordinating governor).
func (d *Downloader) OnActive(fn func(now sim.Time, active bool)) { d.onActive = fn }

// BitsReceived returns the total payload downloaded so far.
func (d *Downloader) BitsReceived() float64 { return d.bitsRx }

// Fetches returns the number of completed fetches.
func (d *Downloader) Fetches() int { return d.fetches }

// Err returns the first internal error (CPU submission), if any.
func (d *Downloader) Err() error { return d.subErr }

// Busy reports whether a fetch is in flight.
func (d *Downloader) Busy() bool { return d.busy }

// Fetch downloads bits of payload and calls onDone at completion. Calls
// while busy are queued in order.
func (d *Downloader) Fetch(bits float64, onDone func(now sim.Time)) error {
	if bits <= 0 {
		return fmt.Errorf("downloader: fetch of %v bits", bits)
	}
	d.queue = append(d.queue, fetchReq{bits: bits, onDone: onDone})
	if !d.busy {
		d.next()
	}
	return nil
}

func (d *Downloader) next() {
	if d.qhead == len(d.queue) {
		d.queue = d.queue[:0]
		d.qhead = 0
		if d.busy {
			d.busy = false
			if d.onActive != nil {
				d.onActive(d.eng.Now(), false)
			}
			d.radio.EndActivity()
		}
		return
	}
	req := d.queue[d.qhead]
	d.queue[d.qhead] = fetchReq{}
	d.qhead++
	d.curBits = req.bits
	d.curDone = req.onDone
	if !d.busy {
		d.busy = true
		if d.onActive != nil {
			d.onActive(d.eng.Now(), true)
		}
	}
	d.radio.BeginActivity(d.readyFn)
}

// ready fires once the radio reaches DCH: the request RTT elapses, then the
// payload streams.
func (d *Downloader) ready() {
	d.eng.Schedule(d.cfg.RTT, d.rttFn)
}

// startStream marks data flowing and (re)enters the streaming loop. It also
// serves as the outage-resume callback.
func (d *Downloader) startStream() {
	d.radio.SetTransferring(true)
	d.stream()
}

// stream advances the download through the piecewise-constant bandwidth
// trace, charging network CPU work per chunk.
func (d *Downloader) stream() {
	now := d.eng.Now()
	rate, until := d.bw.Rate(now)
	if rate <= 0 {
		// Outage: idle the radio Tx flag until the rate returns.
		d.radio.SetTransferring(false)
		d.eng.At(until, d.resumeFn)
		return
	}
	span := until - now
	if span > d.cfg.NetChunk {
		span = d.cfg.NetChunk
	}
	bitsInSpan := rate * span.Seconds()
	if bitsInSpan >= d.curBits {
		// Finishes within this span.
		dt := sim.Time(d.curBits / rate)
		d.eng.Schedule(dt, d.finishFn)
		return
	}
	d.spanBits = bitsInSpan
	d.eng.Schedule(span, d.chunkFn)
}

// chunkDone accounts a completed mid-stream chunk and keeps streaming.
func (d *Downloader) chunkDone() {
	d.bitsRx += d.spanBits
	d.chargeCPU(d.spanBits * d.cfg.CyclesPerBit)
	d.curBits -= d.spanBits
	d.stream()
}

// finish completes the in-flight fetch and starts the next queued one.
func (d *Downloader) finish() {
	remaining := d.curBits
	d.bitsRx += remaining
	d.chargeCPU(remaining * d.cfg.CyclesPerBit)
	d.fetches++
	done := d.curDone
	d.curDone = nil
	// Let the next queued fetch (if any) keep the radio active; otherwise
	// end the burst.
	d.radio.SetTransferring(false)
	if done != nil {
		done(d.eng.Now())
	}
	d.next()
}

func (d *Downloader) chargeCPU(cycles float64) {
	if d.core == nil || cycles <= 0 {
		return
	}
	j := d.pool.Get()
	j.Cycles = cycles
	j.Priority = cpu.PrioNetwork
	j.Tag = "net"
	if err := d.core.Submit(j); err != nil && d.subErr == nil {
		d.subErr = err
	}
}
