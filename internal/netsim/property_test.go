package netsim

import (
	"math"
	"testing"
	"testing/quick"

	"videodvfs/internal/sim"
)

// Property: under any random fetch pattern over any random step trace with
// positive rates, every fetch completes, the bits received equal the bits
// requested, and the radio's state residency covers the whole run.
func TestDownloaderConservationProperty(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		rng := sim.Stream(seed, "prop/dl")
		n := int(nRaw)%8 + 1
		eng := sim.NewEngine()
		radio, err := NewRadio(eng, DefaultUMTS())
		if err != nil {
			return false
		}
		// Random positive-rate step trace.
		var steps []Step
		at := sim.Time(0)
		for i := 0; i < 5; i++ {
			steps = append(steps, Step{Start: at, Bps: rng.Uniform(0.5e6, 20e6)})
			at += sim.Time(rng.Uniform(1, 10))
		}
		bw := Steps{Trace: steps}
		if bw.Validate() != nil {
			return false
		}
		dl, err := NewDownloader(eng, bw, radio, nil, DefaultDownloaderConfig())
		if err != nil {
			return false
		}
		var want float64
		done := 0
		for i := 0; i < n; i++ {
			bits := rng.Uniform(1e5, 2e7)
			want += bits
			at := sim.Time(rng.Uniform(0, 20))
			eng.At(at, func() {
				_ = dl.Fetch(bits, func(sim.Time) { done++ })
			})
		}
		eng.Run()
		if done != n || dl.Err() != nil {
			return false
		}
		if math.Abs(dl.BitsReceived()-want) > 1e-6*want {
			return false
		}
		var resid sim.Time
		for _, d := range radio.Residency() {
			resid += d
		}
		return math.Abs(float64(resid-eng.Now())) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: the radio's reported power always matches its current state's
// configured level, under random activity.
func TestRadioPowerMatchesStateProperty(t *testing.T) {
	cfg := DefaultUMTS()
	f := func(seed int64) bool {
		rng := sim.Stream(seed, "prop/radio")
		eng := sim.NewEngine()
		radio, err := NewRadio(eng, cfg)
		if err != nil {
			return false
		}
		ok := true
		check := func() {
			want := map[RRCState]float64{
				StateIdle: cfg.IdleW,
				StateFACH: cfg.FACHW,
				StateDCH:  cfg.DCHW,
			}[radio.State()]
			got := radio.Power()
			if got != want && got != want+cfg.TxExtraW {
				ok = false
			}
		}
		for i := 0; i < 20; i++ {
			at := sim.Time(rng.Uniform(0, 60))
			switch rng.Intn(3) {
			case 0:
				eng.At(at, func() { radio.BeginActivity(func() { check() }) })
			case 1:
				eng.At(at, func() { radio.EndActivity(); check() })
			default:
				eng.At(at, func() { check() })
			}
		}
		eng.Run()
		check()
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: the radio always returns to IDLE after activity ends and the
// tails expire, regardless of the activity pattern.
func TestRadioEventuallyIdles(t *testing.T) {
	f := func(seed int64) bool {
		rng := sim.Stream(seed, "prop/idle")
		eng := sim.NewEngine()
		radio, err := NewRadio(eng, DefaultUMTS())
		if err != nil {
			return false
		}
		for i := 0; i < 10; i++ {
			at := sim.Time(rng.Uniform(0, 30))
			eng.At(at, func() {
				radio.BeginActivity(func() { radio.EndActivity() })
			})
		}
		eng.Run()
		return radio.State() == StateIdle
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
