package netsim

import (
	"math"
	"testing"

	"videodvfs/internal/sim"
)

func TestConstantRate(t *testing.T) {
	bw := Constant{Bps: 5e6}
	rate, until := bw.Rate(3 * sim.Second)
	if rate != 5e6 || until != sim.Forever {
		t.Fatalf("rate=%v until=%v", rate, until)
	}
}

func TestStepsRateLookup(t *testing.T) {
	s := Steps{Trace: []Step{
		{Start: 0, Bps: 1e6},
		{Start: 10 * sim.Second, Bps: 2e6},
		{Start: 20 * sim.Second, Bps: 0},
	}}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		at        sim.Time
		wantRate  float64
		wantUntil sim.Time
	}{
		{0, 1e6, 10 * sim.Second},
		{5 * sim.Second, 1e6, 10 * sim.Second},
		{10 * sim.Second, 2e6, 20 * sim.Second},
		{25 * sim.Second, 0, sim.Forever},
	}
	for _, c := range cases {
		rate, until := s.Rate(c.at)
		if rate != c.wantRate || until != c.wantUntil {
			t.Errorf("Rate(%v) = (%v, %v), want (%v, %v)", c.at, rate, until, c.wantRate, c.wantUntil)
		}
	}
}

func TestStepsCycleRepeats(t *testing.T) {
	s := Steps{
		Trace: []Step{{Start: 0, Bps: 1e6}, {Start: 5 * sim.Second, Bps: 3e6}},
		Cycle: 10 * sim.Second,
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	rate, until := s.Rate(12 * sim.Second)
	if rate != 1e6 || until != 15*sim.Second {
		t.Fatalf("cycled Rate(12s) = (%v, %v), want (1e6, 15s)", rate, until)
	}
	rate, until = s.Rate(17 * sim.Second)
	if rate != 3e6 || until != 20*sim.Second {
		t.Fatalf("cycled Rate(17s) = (%v, %v), want (3e6, 20s)", rate, until)
	}
}

func TestStepsValidation(t *testing.T) {
	bad := []Steps{
		{},
		{Trace: []Step{{Start: 0, Bps: -1}}},
		{Trace: []Step{{Start: 5 * sim.Second, Bps: 1}, {Start: 5 * sim.Second, Bps: 2}}},
		{Trace: []Step{{Start: 0, Bps: 1}}, Cycle: -sim.Second},
		{Trace: []Step{{Start: 0, Bps: 1}, {Start: 10 * sim.Second, Bps: 2}}, Cycle: 10 * sim.Second},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("case %d: want validation error", i)
		}
	}
}

func TestGenMarkovTraceDeterministic(t *testing.T) {
	a, err := GenMarkovTrace(LTEStates(), 60*sim.Second, sim.Stream(5, "bw"))
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenMarkovTrace(LTEStates(), 60*sim.Second, sim.Stream(5, "bw"))
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Trace) != len(b.Trace) {
		t.Fatal("lengths differ")
	}
	for i := range a.Trace {
		if a.Trace[i] != b.Trace[i] {
			t.Fatalf("step %d differs", i)
		}
	}
}

func TestGenMarkovTraceCoversDuration(t *testing.T) {
	tr, err := GenMarkovTrace(UMTSStates(), 120*sim.Second, sim.Stream(7, "bw"))
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatalf("generated trace invalid: %v", err)
	}
	last := tr.Trace[len(tr.Trace)-1]
	if last.Start < 120*sim.Second-30*sim.Second {
		t.Fatalf("trace ends early at %v", last.Start)
	}
}

func TestGenMarkovTraceMeanRatePlausible(t *testing.T) {
	tr, err := GenMarkovTrace(LTEStates(), 600*sim.Second, sim.Stream(11, "bw"))
	if err != nil {
		t.Fatal(err)
	}
	// Time-weighted mean over the trace.
	var weighted, span float64
	for i, st := range tr.Trace {
		end := 600.0
		if i+1 < len(tr.Trace) {
			end = tr.Trace[i+1].Start.Seconds()
		}
		d := end - st.Start.Seconds()
		if d < 0 {
			d = 0
		}
		weighted += st.Bps * d
		span += d
	}
	mean := weighted / span
	if mean < 5e6 || mean > 25e6 {
		t.Fatalf("LTE mean rate %.1f Mbps outside plausible band", mean/1e6)
	}
}

func TestGenMarkovTraceErrors(t *testing.T) {
	if _, err := GenMarkovTrace(nil, sim.Second, sim.Stream(1, "x")); err == nil {
		t.Fatal("want error for no states")
	}
	bad := []MarkovState{{Name: "x", MeanBps: 1, MeanHold: 0}}
	if _, err := GenMarkovTrace(bad, sim.Second, sim.Stream(1, "x")); err == nil {
		t.Fatal("want error for zero hold")
	}
	mismatched := []MarkovState{{Name: "x", MeanBps: 1, MeanHold: sim.Second, Next: []float64{1, 2}}}
	if _, err := GenMarkovTrace(mismatched, sim.Second, sim.Stream(1, "x")); err == nil {
		t.Fatal("want error for weight arity mismatch")
	}
}

func TestWiFiSteady(t *testing.T) {
	rate, _ := WiFiSteady().Rate(0)
	if rate != 30e6 {
		t.Fatalf("wifi rate = %v", rate)
	}
}

func TestErlangBKnownValues(t *testing.T) {
	// B(rho=1, n=1) = 1/2; B(rho=2, n=2) = 0.4.
	if got := ErlangB(1, 1); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("ErlangB(1,1) = %v", got)
	}
	if got := ErlangB(2, 2); math.Abs(got-0.4) > 1e-12 {
		t.Fatalf("ErlangB(2,2) = %v", got)
	}
	if got := ErlangB(0, 5); got != 0 {
		t.Fatalf("ErlangB(0,5) = %v, want 0", got)
	}
	if got := ErlangB(5, 0); got != 1 {
		t.Fatalf("ErlangB(5,0) = %v, want 1", got)
	}
}

func TestErlangBMonotonicInServers(t *testing.T) {
	prev := 1.0
	for n := 1; n <= 20; n++ {
		b := ErlangB(10, n)
		if b > prev {
			t.Fatalf("blocking increased with more servers at n=%d", n)
		}
		prev = b
	}
}

func TestCapacityUsersShorterHoldMoreUsers(t *testing.T) {
	// 1 session per user per minute; 64 channel pairs; 2% blocking.
	long, err := CapacityUsers(1.0/60, 30, 64, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	short, err := CapacityUsers(1.0/60, 12, 64, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	if short <= long {
		t.Fatalf("shorter hold should raise capacity: %d vs %d", short, long)
	}
	gain := float64(short-long) / float64(long)
	if gain < 0.5 {
		t.Fatalf("capacity gain %.2f implausibly small for 2.5× shorter hold", gain)
	}
}

func TestCapacityUsersErrors(t *testing.T) {
	cases := []struct {
		rate, hold float64
		n          int
		beta       float64
	}{
		{0, 30, 64, 0.02},
		{1, 0, 64, 0.02},
		{1, 30, 0, 0.02},
		{1, 30, 64, 0},
		{1, 30, 64, 1},
	}
	for i, c := range cases {
		if _, err := CapacityUsers(c.rate, c.hold, c.n, c.beta); err == nil {
			t.Errorf("case %d: want error", i)
		}
	}
}
