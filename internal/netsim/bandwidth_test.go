package netsim

import (
	"math"
	"testing"

	"videodvfs/internal/sim"
)

func TestConstantRate(t *testing.T) {
	bw := Constant{Bps: 5e6}
	rate, until := bw.Rate(3 * sim.Second)
	if rate != 5e6 || until != sim.Forever {
		t.Fatalf("rate=%v until=%v", rate, until)
	}
}

func TestStepsRateLookup(t *testing.T) {
	s := Steps{Trace: []Step{
		{Start: 0, Bps: 1e6},
		{Start: 10 * sim.Second, Bps: 2e6},
		{Start: 20 * sim.Second, Bps: 0},
	}}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		at        sim.Time
		wantRate  float64
		wantUntil sim.Time
	}{
		{0, 1e6, 10 * sim.Second},
		{5 * sim.Second, 1e6, 10 * sim.Second},
		{10 * sim.Second, 2e6, 20 * sim.Second},
		{25 * sim.Second, 0, sim.Forever},
	}
	for _, c := range cases {
		rate, until := s.Rate(c.at)
		if rate != c.wantRate || until != c.wantUntil {
			t.Errorf("Rate(%v) = (%v, %v), want (%v, %v)", c.at, rate, until, c.wantRate, c.wantUntil)
		}
	}
}

func TestStepsCycleRepeats(t *testing.T) {
	s := Steps{
		Trace: []Step{{Start: 0, Bps: 1e6}, {Start: 5 * sim.Second, Bps: 3e6}},
		Cycle: 10 * sim.Second,
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	rate, until := s.Rate(12 * sim.Second)
	if rate != 1e6 || until != 15*sim.Second {
		t.Fatalf("cycled Rate(12s) = (%v, %v), want (1e6, 15s)", rate, until)
	}
	rate, until = s.Rate(17 * sim.Second)
	if rate != 3e6 || until != 20*sim.Second {
		t.Fatalf("cycled Rate(17s) = (%v, %v), want (3e6, 20s)", rate, until)
	}
}

func TestStepsValidation(t *testing.T) {
	bad := []Steps{
		{},
		{Trace: []Step{{Start: 0, Bps: -1}}},
		{Trace: []Step{{Start: 5 * sim.Second, Bps: 1}, {Start: 5 * sim.Second, Bps: 2}}},
		{Trace: []Step{{Start: 0, Bps: 1}}, Cycle: -sim.Second},
		{Trace: []Step{{Start: 0, Bps: 1}, {Start: 10 * sim.Second, Bps: 2}}, Cycle: 10 * sim.Second},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("case %d: want validation error", i)
		}
	}
}

func TestGenMarkovTraceDeterministic(t *testing.T) {
	a, err := GenMarkovTrace(LTEStates(), 60*sim.Second, sim.Stream(5, "bw"))
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenMarkovTrace(LTEStates(), 60*sim.Second, sim.Stream(5, "bw"))
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Trace) != len(b.Trace) {
		t.Fatal("lengths differ")
	}
	for i := range a.Trace {
		if a.Trace[i] != b.Trace[i] {
			t.Fatalf("step %d differs", i)
		}
	}
}

func TestGenMarkovTraceCoversDuration(t *testing.T) {
	tr, err := GenMarkovTrace(UMTSStates(), 120*sim.Second, sim.Stream(7, "bw"))
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatalf("generated trace invalid: %v", err)
	}
	last := tr.Trace[len(tr.Trace)-1]
	if last.Start < 120*sim.Second-30*sim.Second {
		t.Fatalf("trace ends early at %v", last.Start)
	}
}

func TestGenMarkovTraceMeanRatePlausible(t *testing.T) {
	tr, err := GenMarkovTrace(LTEStates(), 600*sim.Second, sim.Stream(11, "bw"))
	if err != nil {
		t.Fatal(err)
	}
	// Time-weighted mean over the trace.
	var weighted, span float64
	for i, st := range tr.Trace {
		end := 600.0
		if i+1 < len(tr.Trace) {
			end = tr.Trace[i+1].Start.Seconds()
		}
		d := end - st.Start.Seconds()
		if d < 0 {
			d = 0
		}
		weighted += st.Bps * d
		span += d
	}
	mean := weighted / span
	if mean < 5e6 || mean > 25e6 {
		t.Fatalf("LTE mean rate %.1f Mbps outside plausible band", mean/1e6)
	}
}

func TestGenMarkovTraceErrors(t *testing.T) {
	if _, err := GenMarkovTrace(nil, sim.Second, sim.Stream(1, "x")); err == nil {
		t.Fatal("want error for no states")
	}
	bad := []MarkovState{{Name: "x", MeanBps: 1, MeanHold: 0}}
	if _, err := GenMarkovTrace(bad, sim.Second, sim.Stream(1, "x")); err == nil {
		t.Fatal("want error for zero hold")
	}
	mismatched := []MarkovState{{Name: "x", MeanBps: 1, MeanHold: sim.Second, Next: []float64{1, 2}}}
	if _, err := GenMarkovTrace(mismatched, sim.Second, sim.Stream(1, "x")); err == nil {
		t.Fatal("want error for weight arity mismatch")
	}
}

func TestWiFiSteady(t *testing.T) {
	rate, _ := WiFiSteady().Rate(0)
	if rate != 30e6 {
		t.Fatalf("wifi rate = %v", rate)
	}
}

func TestErlangBKnownValues(t *testing.T) {
	// B(rho=1, n=1) = 1/2; B(rho=2, n=2) = 0.4.
	if got := ErlangB(1, 1); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("ErlangB(1,1) = %v", got)
	}
	if got := ErlangB(2, 2); math.Abs(got-0.4) > 1e-12 {
		t.Fatalf("ErlangB(2,2) = %v", got)
	}
	if got := ErlangB(0, 5); got != 0 {
		t.Fatalf("ErlangB(0,5) = %v, want 0", got)
	}
	if got := ErlangB(5, 0); got != 1 {
		t.Fatalf("ErlangB(5,0) = %v, want 1", got)
	}
}

func TestErlangBMonotonicInServers(t *testing.T) {
	prev := 1.0
	for n := 1; n <= 20; n++ {
		b := ErlangB(10, n)
		if b > prev {
			t.Fatalf("blocking increased with more servers at n=%d", n)
		}
		prev = b
	}
}

func TestCapacityUsersShorterHoldMoreUsers(t *testing.T) {
	// 1 session per user per minute; 64 channel pairs; 2% blocking.
	long, err := CapacityUsers(1.0/60, 30, 64, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	short, err := CapacityUsers(1.0/60, 12, 64, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	if short <= long {
		t.Fatalf("shorter hold should raise capacity: %d vs %d", short, long)
	}
	gain := float64(short-long) / float64(long)
	if gain < 0.5 {
		t.Fatalf("capacity gain %.2f implausibly small for 2.5× shorter hold", gain)
	}
}

func TestCapacityUsersErrors(t *testing.T) {
	cases := []struct {
		rate, hold float64
		n          int
		beta       float64
	}{
		{0, 30, 64, 0.02},
		{1, 0, 64, 0.02},
		{1, 30, 0, 0.02},
		{1, 30, 64, 0},
		{1, 30, 64, 1},
	}
	for i, c := range cases {
		if _, err := CapacityUsers(c.rate, c.hold, c.n, c.beta); err == nil {
			t.Errorf("case %d: want error", i)
		}
	}
}

// TestStepsCycleBoundaryProperty pins the cycle-boundary contract of
// Steps.Rate: the rate is exactly periodic (Rate(t) == Rate(t+Cycle)), the
// returned horizon strictly advances past the query time, and walking the
// trace horizon-to-horizon visits the pieces in order without ever holding
// a stale rate at an exact boundary. Dense sampling hugs each boundary
// from both sides, including float-adjacent offsets, and a large time
// offset exercises the floor-based cycle indexing where the old int
// truncation was unchecked.
func TestStepsCycleBoundaryProperty(t *testing.T) {
	s := Steps{
		Trace: []Step{
			{Start: 0, Bps: 4e6},
			{Start: 3 * sim.Second, Bps: 1e6},
			{Start: 7 * sim.Second, Bps: 9e6},
		},
		Cycle: 10 * sim.Second,
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	// Dense boundary sampling: every piece boundary of the first cycles,
	// approached from below, hit exactly, and left from above — at small
	// and float-adjacent offsets — plus far-future instants.
	var samples []sim.Time
	boundaries := []sim.Time{0, 3 * sim.Second, 7 * sim.Second, 10 * sim.Second}
	for cycle := 0; cycle < 4; cycle++ {
		base := sim.Time(cycle) * s.Cycle
		for _, b := range boundaries {
			at := base + b
			samples = append(samples, at,
				at+sim.Microsecond, at-sim.Microsecond,
				sim.Time(math.Nextafter(float64(at), math.Inf(1))),
				sim.Time(math.Nextafter(float64(at), math.Inf(-1))),
			)
		}
	}
	samples = append(samples, 1e6*sim.Second, 1e6*sim.Second+3*sim.Second,
		sim.Time(math.Nextafter(1e7, math.Inf(-1))))
	for _, at := range samples {
		if at < 0 {
			continue
		}
		rate, until := s.Rate(at)
		if until <= at {
			t.Fatalf("Rate(%.17g): until %.17g does not advance", float64(at), float64(until))
		}
		if (at+s.Cycle)-s.Cycle != at {
			continue // the +Cycle shift itself rounded: phase changed
		}
		rate2, until2 := s.Rate(at + s.Cycle)
		if rate2 != rate {
			t.Fatalf("Rate(%.17g) = %v but Rate(+Cycle) = %v: not periodic", float64(at), rate, rate2)
		}
		if until2 <= at+s.Cycle {
			t.Fatalf("Rate(%.17g+Cycle): until %.17g does not advance", float64(at), float64(until2))
		}
	}
	// Horizon walk: stepping t = until must advance strictly and visit the
	// piece rates in cyclic order — at an exact boundary the *next* piece's
	// rate must be reported, never the previous one held for a microsecond.
	want := []float64{4e6, 1e6, 9e6}
	at := sim.Time(0)
	for i := 0; i < 30; i++ {
		rate, until := s.Rate(at)
		if w := want[i%3]; rate != w {
			t.Fatalf("walk step %d at %v: rate %v, want %v", i, at, rate, w)
		}
		if until <= at {
			t.Fatalf("walk step %d at %v: until %v does not advance", i, at, until)
		}
		at = until
	}
}

// TestStepsRateExactCycleBoundary is the regression for the stale
// microsecond hold: at now == k*Cycle the old code could return the last
// piece's rate (from the previous cycle) with until = now + 1µs.
func TestStepsRateExactCycleBoundary(t *testing.T) {
	s := Steps{
		Trace: []Step{{Start: 0, Bps: 8e6}, {Start: 6 * sim.Second, Bps: 2e6}},
		Cycle: 10 * sim.Second,
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	for k := 1; k < 5; k++ {
		at := sim.Time(k) * s.Cycle
		rate, until := s.Rate(at)
		if rate != 8e6 {
			t.Fatalf("Rate(%d*Cycle) = %v, want the first piece's 8e6", k, rate)
		}
		if want := at + 6*sim.Second; until != want {
			t.Fatalf("Rate(%d*Cycle) until = %v, want %v", k, until, want)
		}
	}
}
