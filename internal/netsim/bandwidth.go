// Package netsim models the network substrate of mobile streaming: link
// bandwidth over time (constant, stepped, and Markov-modulated cellular
// traces), the 3G/LTE RRC radio state machine with its power levels and
// inactivity tail timers, a segment downloader that drives both, and the
// M/G/N capacity model used for the radio-resource experiment.
package netsim

import (
	"fmt"
	"math"
	"sort"

	"videodvfs/internal/sim"
)

// Bandwidth exposes link rate as a piecewise-constant function of time:
// Rate returns the current rate and the time until which it is guaranteed
// constant, so downloads can integrate exactly.
type Bandwidth interface {
	// Rate returns the rate in bits/s at now and the horizon up to which
	// that rate holds. The horizon must be > now (or sim.Forever).
	Rate(now sim.Time) (bps float64, until sim.Time)
}

// Constant is a fixed-rate link.
type Constant struct {
	// Bps is the link rate in bits/s.
	Bps float64
}

// Rate implements Bandwidth.
func (c Constant) Rate(sim.Time) (float64, sim.Time) { return c.Bps, sim.Forever }

// Step is one piece of a stepped bandwidth trace.
type Step struct {
	// Start is when this rate takes effect.
	Start sim.Time
	// Bps is the rate from Start until the next step.
	Bps float64
}

// Steps is a piecewise-constant bandwidth trace. The rate before the first
// step is the first step's rate; after the last step, the last rate holds
// forever. Steps repeat cyclically if Cycle is positive.
type Steps struct {
	// Trace is the step list, ascending by Start.
	Trace []Step
	// Cycle, if positive, repeats the trace with this period.
	Cycle sim.Time
}

// Validate checks trace ordering.
func (s Steps) Validate() error {
	if len(s.Trace) == 0 {
		return fmt.Errorf("netsim: empty step trace")
	}
	for i, st := range s.Trace {
		if st.Bps < 0 {
			return fmt.Errorf("netsim: step %d has negative rate", i)
		}
		if i > 0 && st.Start <= s.Trace[i-1].Start {
			return fmt.Errorf("netsim: steps not ascending at %d", i)
		}
	}
	if s.Cycle < 0 {
		return fmt.Errorf("netsim: negative cycle")
	}
	if s.Cycle > 0 && s.Trace[len(s.Trace)-1].Start >= s.Cycle {
		return fmt.Errorf("netsim: last step starts at/after the cycle period")
	}
	return nil
}

// Rate implements Bandwidth.
func (s Steps) Rate(now sim.Time) (float64, sim.Time) {
	if len(s.Trace) == 0 {
		return 0, sim.Forever
	}
	t := now
	var base sim.Time
	if s.Cycle > 0 {
		// math.Floor, not int truncation: a conversion through int is
		// undefined for values outside int's range (huge now / tiny cycle)
		// and truncates toward zero for negative quotients. Renormalize so
		// t lands in [0, Cycle) even when the division or multiplication
		// rounded across a boundary.
		base = sim.Time(math.Floor(float64(now/s.Cycle))) * s.Cycle
		if now-base >= s.Cycle {
			base += s.Cycle
		} else if now < base {
			base -= s.Cycle
		}
		t = now - base
	}
	// Find the step active at t.
	i := sort.Search(len(s.Trace), func(i int) bool { return s.Trace[i].Start > t }) - 1
	if i < 0 {
		i = 0
	}
	rate := s.Trace[i].Bps
	var until sim.Time
	if i+1 < len(s.Trace) {
		until = base + s.Trace[i+1].Start
	} else if s.Cycle > 0 {
		until = base + s.Cycle
	} else {
		return rate, sim.Forever
	}
	if until <= now {
		// Float-edge collapse: base + boundary rounded onto (or under) now,
		// so the query instant already belongs to the next piece. Advance
		// one piece and answer with its rate instead of holding the stale
		// one — the old microsecond hold reported the previous cycle's last
		// rate for 1µs at exact cycle boundaries.
		i++
		if i >= len(s.Trace) {
			i = 0
			base += s.Cycle
		}
		rate = s.Trace[i].Bps
		if i+1 < len(s.Trace) {
			until = base + s.Trace[i+1].Start
		} else if s.Cycle > 0 {
			until = base + s.Cycle
		} else {
			return rate, sim.Forever
		}
		if until <= now {
			// Pathological scale (cycle below float resolution at now):
			// the rate is current, and the horizon still must advance.
			until = now + sim.Microsecond
		}
	}
	return rate, until
}

// MarkovState is one state of a Markov-modulated bandwidth process.
type MarkovState struct {
	// Name labels the state ("good", "edge", "outage").
	Name string
	// MeanBps is the mean rate in this state; each visit draws a rate
	// lognormally around it with RateCV.
	MeanBps float64
	// RateCV is the per-visit rate variability.
	RateCV float64
	// MeanHold is the mean sojourn time (exponential).
	MeanHold sim.Time
	// Next are transition weights to other states (by index); uniform if
	// empty.
	Next []float64
}

// GenMarkovTrace pregenerates a Steps trace of the given duration from a
// Markov bandwidth process, deterministically from rng.
func GenMarkovTrace(states []MarkovState, dur sim.Time, rng *sim.RNG) (Steps, error) {
	if len(states) == 0 {
		return Steps{}, fmt.Errorf("netsim: no markov states")
	}
	for i, st := range states {
		if st.MeanBps < 0 || st.MeanHold <= 0 {
			return Steps{}, fmt.Errorf("netsim: markov state %d (%s) invalid", i, st.Name)
		}
		if len(st.Next) != 0 && len(st.Next) != len(states) {
			return Steps{}, fmt.Errorf("netsim: markov state %d has %d weights, want %d", i, len(st.Next), len(states))
		}
	}
	var trace []Step
	cur := 0
	var at sim.Time
	for at < dur {
		st := states[cur]
		rate := st.MeanBps
		if rate > 0 && st.RateCV > 0 {
			rate = rng.LognormalMeanCV(st.MeanBps, st.RateCV)
		}
		trace = append(trace, Step{Start: at, Bps: rate})
		hold := sim.Time(rng.Exp(st.MeanHold.Seconds()))
		if hold < 100*sim.Millisecond {
			hold = 100 * sim.Millisecond
		}
		at += hold
		if len(st.Next) == 0 {
			cur = rng.Intn(len(states))
		} else {
			cur = rng.Pick(st.Next)
		}
	}
	return Steps{Trace: trace}, nil
}

// LTEStates returns a three-state LTE profile: good cell, cell edge, and
// brief outages, averaging ≈12 Mbps.
func LTEStates() []MarkovState {
	return []MarkovState{
		{Name: "good", MeanBps: 18e6, RateCV: 0.25, MeanHold: 8 * sim.Second, Next: []float64{0, 0.9, 0.1}},
		{Name: "edge", MeanBps: 4e6, RateCV: 0.40, MeanHold: 4 * sim.Second, Next: []float64{0.85, 0, 0.15}},
		{Name: "outage", MeanBps: 0, RateCV: 0, MeanHold: 800 * sim.Millisecond, Next: []float64{0.5, 0.5, 0}},
	}
}

// UMTSStates returns a 3G HSPA profile averaging ≈2.5 Mbps.
func UMTSStates() []MarkovState {
	return []MarkovState{
		{Name: "good", MeanBps: 3.5e6, RateCV: 0.30, MeanHold: 10 * sim.Second, Next: []float64{0, 0.9, 0.1}},
		{Name: "edge", MeanBps: 1.0e6, RateCV: 0.40, MeanHold: 5 * sim.Second, Next: []float64{0.8, 0, 0.2}},
		{Name: "outage", MeanBps: 0, RateCV: 0, MeanHold: 1200 * sim.Millisecond, Next: []float64{0.4, 0.6, 0}},
	}
}

// WiFiSteady returns a stable 30 Mbps WiFi link.
func WiFiSteady() Bandwidth { return Constant{Bps: 30e6} }
