package netsim

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"

	"videodvfs/internal/sim"
)

// ErrInvalidTrace reports a bandwidth trace rejected by validation or the
// JSONL decoder: non-finite or negative values, non-monotonic timestamps,
// overlapping samples, malformed lines. Callers distinguish it with
// errors.Is; RunConfig.Validate additionally wraps it in ErrInvalidConfig
// so trace-backed configs fail through the standard taxonomy.
var ErrInvalidTrace = errors.New("invalid bandwidth trace")

// MaxTraceSamples bounds how many samples ReadTrace will accept: one
// sample per ~64 KiB chunk means even an hour-long gigabit recording
// stays far below it, while a hostile input cannot allocate unboundedly.
const MaxTraceSamples = 1 << 20

// TraceSample is one recorded transfer chunk: Bytes payload bytes
// observed on the wire during [Start, End). Fetch tags the download the
// chunk belonged to, so replay can tell mid-transfer stalls (gaps inside
// one fetch: the link delivered nothing) from idle time between fetches
// (the player simply wasn't asking).
type TraceSample struct {
	// Start is when the chunk's first byte was observed, on the
	// recording's session timeline.
	Start sim.Time
	// End is when the chunk's last byte was observed; strictly after
	// Start.
	End sim.Time
	// Bytes is the chunk payload in bytes (positive).
	Bytes float64
	// Fetch is the zero-based index of the download this chunk belongs
	// to; non-decreasing across samples.
	Fetch int
}

// rate returns the sample's mean delivery rate in bits/s.
func (s TraceSample) rate() float64 {
	return s.Bytes * 8 / (s.End - s.Start).Seconds()
}

// Trace replays a recorded bandwidth/timing trace as a piecewise-constant
// Bandwidth: the trace-driven netsim backend (RunConfig.Net = "trace").
//
// Rate semantics, chosen so a replayed player reproduces the recorded
// transfer behavior without being brittle to small timing misalignment:
//
//   - inside a sample, the link runs at the sample's measured mean rate;
//   - in a gap between two samples of the same fetch, the link delivers
//     nothing (rate 0) — the recording proves the wire stalled there
//     (ON-OFF shaping, throttling, loss recovery);
//   - in a gap between fetches (and before the first sample), the link
//     runs at the next sample's rate — that idle time was the recorded
//     player's choice, not the network's, so a replayed fetch issued
//     slightly early must not stall on it;
//   - after the last sample, the last rate holds forever, so replays
//     longer than the recording degrade gracefully instead of starving.
type Trace struct {
	// Samples is the chunk list, ascending and non-overlapping in time.
	Samples []TraceSample
}

// Validate checks the sample list: finite positive-duration samples,
// positive byte counts, global time monotonicity without overlap, and
// non-decreasing fetch indexes. Errors match ErrInvalidTrace.
func (t Trace) Validate() error {
	if len(t.Samples) == 0 {
		return fmt.Errorf("netsim: %w: no samples", ErrInvalidTrace)
	}
	for i, s := range t.Samples {
		if !isFinite(float64(s.Start)) || !isFinite(float64(s.End)) || !isFinite(s.Bytes) {
			return fmt.Errorf("netsim: %w: sample %d has non-finite fields", ErrInvalidTrace, i)
		}
		if s.Start < 0 {
			return fmt.Errorf("netsim: %w: sample %d starts at negative time %v", ErrInvalidTrace, i, s.Start)
		}
		if s.End <= s.Start {
			return fmt.Errorf("netsim: %w: sample %d spans [%v, %v], not positive", ErrInvalidTrace, i, s.Start, s.End)
		}
		if s.Bytes <= 0 {
			return fmt.Errorf("netsim: %w: sample %d carries %v bytes", ErrInvalidTrace, i, s.Bytes)
		}
		if s.Fetch < 0 {
			return fmt.Errorf("netsim: %w: sample %d has negative fetch index %d", ErrInvalidTrace, i, s.Fetch)
		}
		if i > 0 {
			if s.Start < t.Samples[i-1].End {
				return fmt.Errorf("netsim: %w: sample %d starts at %v before sample %d ends at %v",
					ErrInvalidTrace, i, s.Start, i-1, t.Samples[i-1].End)
			}
			if s.Fetch < t.Samples[i-1].Fetch {
				return fmt.Errorf("netsim: %w: sample %d fetch index %d decreases from %d",
					ErrInvalidTrace, i, s.Fetch, t.Samples[i-1].Fetch)
			}
		}
	}
	return nil
}

// Rate implements Bandwidth; see the type comment for the replay
// semantics. The trace must have been validated — Rate assumes ordered
// samples.
func (t Trace) Rate(now sim.Time) (float64, sim.Time) {
	n := len(t.Samples)
	if n == 0 {
		return 0, sim.Forever
	}
	// First sample still (partly) ahead of now.
	i := sort.Search(n, func(i int) bool { return t.Samples[i].End > now })
	if i == n {
		// Past the recording: hold the final rate.
		return t.Samples[n-1].rate(), sim.Forever
	}
	s := t.Samples[i]
	if now >= s.Start {
		return s.rate(), s.End
	}
	// In the gap before sample i.
	if i > 0 && t.Samples[i-1].Fetch == s.Fetch {
		// Mid-fetch stall: the wire was provably silent here.
		return 0, s.Start
	}
	// Between fetches (or lead-in before the first): the upcoming rate.
	return s.rate(), s.End
}

// Duration returns the end of the last sample (zero for an empty trace).
func (t Trace) Duration() sim.Time {
	if len(t.Samples) == 0 {
		return 0
	}
	return t.Samples[len(t.Samples)-1].End
}

// TotalBytes sums the recorded payload.
func (t Trace) TotalBytes() float64 {
	var sum float64
	for _, s := range t.Samples {
		sum += s.Bytes
	}
	return sum
}

// Fetches returns the number of distinct downloads in the trace.
func (t Trace) Fetches() int {
	if len(t.Samples) == 0 {
		return 0
	}
	return t.Samples[len(t.Samples)-1].Fetch + 1
}

// FetchBytes returns per-fetch byte totals, indexed by fetch.
func (t Trace) FetchBytes() []float64 {
	if len(t.Samples) == 0 {
		return nil
	}
	out := make([]float64, t.Fetches())
	for _, s := range t.Samples {
		out[s.Fetch] += s.Bytes
	}
	return out
}

func isFinite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }

// traceHeader is the first JSONL line of a trace file, versioning the
// format.
type traceHeader struct {
	Format  string `json:"format"`
	Version int    `json:"version"`
}

// traceLine is the wire form of one sample: timestamps in seconds on the
// recording's session timeline.
type traceLine struct {
	T0    float64 `json:"t0"`
	T1    float64 `json:"t1"`
	Bytes float64 `json:"bytes"`
	Fetch int     `json:"fetch"`
}

const (
	traceFormat  = "videodvfs-bwtrace"
	traceVersion = 1
)

// WriteTrace emits the trace as JSONL: a header line
// {"format":"videodvfs-bwtrace","version":1} followed by one
// {"t0","t1","bytes","fetch"} object per sample, timestamps in seconds
// with shortest-round-trip floats. The output of WriteTrace always
// re-reads via ReadTrace byte-losslessly for a valid trace.
func WriteTrace(w io.Writer, t Trace) error {
	bw := bufio.NewWriter(w)
	hdr, err := json.Marshal(traceHeader{Format: traceFormat, Version: traceVersion})
	if err != nil {
		return fmt.Errorf("netsim: marshal trace header: %w", err)
	}
	bw.Write(hdr)
	bw.WriteByte('\n')
	buf := make([]byte, 0, 96)
	for _, s := range t.Samples {
		// Hand-rolled object for shortest-round-trip floats: json.Marshal
		// would also round-trip float64 exactly, but this pins the byte
		// form (field order, 'g' formatting) the golden testdata relies on.
		buf = append(buf[:0], `{"t0":`...)
		buf = strconv.AppendFloat(buf, s.Start.Seconds(), 'g', -1, 64)
		buf = append(buf, `,"t1":`...)
		buf = strconv.AppendFloat(buf, s.End.Seconds(), 'g', -1, 64)
		buf = append(buf, `,"bytes":`...)
		buf = strconv.AppendFloat(buf, s.Bytes, 'g', -1, 64)
		buf = append(buf, `,"fetch":`...)
		buf = strconv.AppendInt(buf, int64(s.Fetch), 10)
		buf = append(buf, '}', '\n')
		if _, err := bw.Write(buf); err != nil {
			return fmt.Errorf("netsim: write trace: %w", err)
		}
	}
	return bw.Flush()
}

// ReadTrace parses a JSONL bandwidth trace produced by WriteTrace (or by
// the dvfsstress recorder). The decoder is strict: the header line must
// match the known format and version, every sample line must be a JSON
// object with no unknown fields, and the assembled trace must pass
// Validate. All rejections — including NaN/Inf timestamps, negative
// values, and non-monotonic samples — return errors matching
// ErrInvalidTrace; no input panics.
func ReadTrace(r io.Reader) (Trace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return Trace{}, fmt.Errorf("netsim: read trace: %w", err)
		}
		return Trace{}, fmt.Errorf("netsim: %w: empty trace file", ErrInvalidTrace)
	}
	var hdr traceHeader
	if err := decodeStrictLine(sc.Bytes(), &hdr); err != nil {
		return Trace{}, fmt.Errorf("netsim: %w: header: %v", ErrInvalidTrace, err)
	}
	if hdr.Format != traceFormat {
		return Trace{}, fmt.Errorf("netsim: %w: header format %q, want %q", ErrInvalidTrace, hdr.Format, traceFormat)
	}
	if hdr.Version != traceVersion {
		return Trace{}, fmt.Errorf("netsim: %w: unsupported trace version %d", ErrInvalidTrace, hdr.Version)
	}
	var t Trace
	for line := 2; sc.Scan(); line++ {
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue // tolerate a trailing newline
		}
		if len(t.Samples) >= MaxTraceSamples {
			return Trace{}, fmt.Errorf("netsim: %w: more than %d samples", ErrInvalidTrace, MaxTraceSamples)
		}
		var l traceLine
		if err := decodeStrictLine(raw, &l); err != nil {
			return Trace{}, fmt.Errorf("netsim: %w: line %d: %v", ErrInvalidTrace, line, err)
		}
		t.Samples = append(t.Samples, TraceSample{
			Start: sim.Time(l.T0),
			End:   sim.Time(l.T1),
			Bytes: l.Bytes,
			Fetch: l.Fetch,
		})
	}
	if err := sc.Err(); err != nil {
		return Trace{}, fmt.Errorf("netsim: read trace: %w", err)
	}
	if err := t.Validate(); err != nil {
		return Trace{}, err
	}
	return t, nil
}

// decodeStrictLine unmarshals exactly one JSON object from a line,
// rejecting unknown fields and trailing non-whitespace.
func decodeStrictLine(line []byte, v any) error {
	dec := json.NewDecoder(newBytesReader(line))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return err
	}
	if dec.More() {
		return fmt.Errorf("trailing data after JSON object")
	}
	return nil
}

// newBytesReader avoids importing bytes for one call site.
func newBytesReader(b []byte) io.Reader { return &byteReader{b: b} }

type byteReader struct{ b []byte }

func (r *byteReader) Read(p []byte) (int, error) {
	if len(r.b) == 0 {
		return 0, io.EOF
	}
	n := copy(p, r.b)
	r.b = r.b[n:]
	return n, nil
}
