package netsim

import (
	"fmt"
	"math"
)

// ErlangB returns the blocking probability of an M/G/N loss system with
// offered load rho (Erlangs) and n servers, computed with the numerically
// stable recurrence B(0)=1, B(k) = rho·B(k-1) / (k + rho·B(k-1)).
func ErlangB(rho float64, n int) float64 {
	if n < 0 || rho < 0 {
		return 1
	}
	b := 1.0
	for k := 1; k <= n; k++ {
		b = rho * b / (float64(k) + rho*b)
	}
	return b
}

// CapacityUsers returns the maximum number of users a cell supports such
// that session blocking stays below beta, when each user offers sessions
// at ratePerUser (sessions/s) that hold a dedicated channel for holdTime
// seconds, with n channel pairs available. This is the paper group's
// M/G/N radio-capacity model: shorter channel hold times (earlier DCH
// release) directly increase capacity.
func CapacityUsers(ratePerUser, holdTime float64, n int, beta float64) (int, error) {
	if ratePerUser <= 0 || holdTime <= 0 {
		return 0, fmt.Errorf("capacity: rate %v and hold time %v must be positive", ratePerUser, holdTime)
	}
	if n <= 0 {
		return 0, fmt.Errorf("capacity: %d channels", n)
	}
	if beta <= 0 || beta >= 1 {
		return 0, fmt.Errorf("capacity: beta %v outside (0, 1)", beta)
	}
	perUserLoad := ratePerUser * holdTime
	// The per-user load is tiny, so scan; bound the scan generously.
	limit := int(math.Ceil(float64(n)/perUserLoad)) * 4
	if limit < 16 {
		limit = 16
	}
	best := 0
	for k := 1; k <= limit; k++ {
		if ErlangB(float64(k)*perUserLoad, n) < beta {
			best = k
		} else {
			break
		}
	}
	if best == 0 {
		return 0, fmt.Errorf("capacity: even one user exceeds blocking target %v", beta)
	}
	return best, nil
}
