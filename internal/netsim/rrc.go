package netsim

import (
	"fmt"

	"videodvfs/internal/sim"
	"videodvfs/internal/trace"
)

// RRCState is a radio resource control state. The three-state machine
// covers both UMTS (IDLE/FACH/DCH) and, by relabeling, LTE
// (IDLE/DRX/CONNECTED).
type RRCState uint8

// Radio states, from cheapest to most expensive.
const (
	// StateIdle has no signaling connection; promotion is slow.
	StateIdle RRCState = iota + 1
	// StateFACH holds the signaling connection on shared channels
	// (LTE: DRX). Promotion to DCH is fast.
	StateFACH
	// StateDCH holds dedicated transmission channels (LTE: CONNECTED).
	StateDCH
)

// String returns the UMTS state name.
func (s RRCState) String() string {
	switch s {
	case StateIdle:
		return "IDLE"
	case StateFACH:
		return "FACH"
	case StateDCH:
		return "DCH"
	default:
		return "?"
	}
}

// RRCConfig holds the radio state machine's timers and power levels.
// Defaults follow the published UMTS measurements the paper's group
// reported (DCH ≈ 1.15 W, FACH ≈ 0.63 W, T1 = 4 s, T2 = 15 s, IDLE→DCH
// promotion > 1 s).
type RRCConfig struct {
	// IdleW, FACHW, DCHW are the radio power levels per state.
	IdleW, FACHW, DCHW float64
	// TxExtraW is drawn on top of DCHW while bits are actually flowing.
	TxExtraW float64
	// T1 is the DCH→FACH inactivity tail.
	T1 sim.Time
	// T2 is the FACH→IDLE inactivity tail.
	T2 sim.Time
	// PromoIdle is the IDLE→DCH promotion delay (signaling setup).
	PromoIdle sim.Time
	// PromoFACH is the FACH→DCH promotion delay.
	PromoFACH sim.Time
	// FastDormancy, when set, demotes DCH→IDLE immediately after each
	// activity ends instead of waiting out the tails (SCRI release).
	FastDormancy bool
}

// DefaultUMTS returns the measured T-Mobile UMTS profile.
func DefaultUMTS() RRCConfig {
	return RRCConfig{
		IdleW:     0.02,
		FACHW:     0.63,
		DCHW:      1.15,
		TxExtraW:  0.10,
		T1:        4 * sim.Second,
		T2:        15 * sim.Second,
		PromoIdle: 2 * sim.Second,
		PromoFACH: 700 * sim.Millisecond,
	}
}

// DefaultLTE returns an LTE profile: CONNECTED/DRX mapped onto the DCH/FACH
// slots with a 10 s + 1.3 s tail split and faster promotions.
func DefaultLTE() RRCConfig {
	return RRCConfig{
		IdleW:     0.02,
		FACHW:     0.45, // long DRX
		DCHW:      1.20, // CONNECTED
		TxExtraW:  0.30,
		T1:        10 * sim.Second,
		T2:        1300 * sim.Millisecond,
		PromoIdle: 400 * sim.Millisecond,
		PromoFACH: 100 * sim.Millisecond,
	}
}

// Validate checks the configuration.
func (c RRCConfig) Validate() error {
	if c.IdleW < 0 || c.FACHW <= c.IdleW || c.DCHW <= c.FACHW {
		return fmt.Errorf("rrc: power levels must satisfy 0 ≤ idle < fach < dch (got %v/%v/%v)", c.IdleW, c.FACHW, c.DCHW)
	}
	if c.TxExtraW < 0 {
		return fmt.Errorf("rrc: negative tx extra power")
	}
	if c.T1 <= 0 || c.T2 <= 0 {
		return fmt.Errorf("rrc: tail timers must be positive (T1=%v, T2=%v)", c.T1, c.T2)
	}
	if c.PromoIdle < 0 || c.PromoFACH < 0 {
		return fmt.Errorf("rrc: negative promotion delays")
	}
	return nil
}

// Radio is the RRC state machine instance. Activity begins with
// BeginActivity (which promotes to DCH, after the applicable delay) and
// ends with EndActivity (which arms the tail timers or fast-dormancy
// release). Power is reported to the registered listener on every change.
type Radio struct {
	eng *sim.Engine
	cfg RRCConfig

	state        RRCState
	transferring bool
	promoting    bool
	waiters      []func()
	// waitersSpare is the second half of a double buffer: promotion
	// completion swaps it in before draining, so waiter slices are reused
	// instead of reallocated every promotion.
	waitersSpare []func()
	t1, t2       *sim.Timeout
	promoEv      sim.Event
	// promotedFn is the pre-bound promotion-complete callback.
	promotedFn func()

	onPower func(now sim.Time, watts float64)
	onState func(now sim.Time, s RRCState)
	tracer  trace.Tracer

	// dwell is indexed by RRCState (hot path); Residency converts to a
	// map at the reporting boundary.
	dwell     [StateDCH + 1]sim.Time
	lastDwell sim.Time
	promos    int
}

// NewRadio returns a radio in IDLE.
func NewRadio(eng *sim.Engine, cfg RRCConfig) (*Radio, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	r := &Radio{eng: eng, cfg: cfg, state: StateIdle}
	r.t1 = sim.NewTimeout(eng, cfg.T1, func(sim.Time) { r.demoteToFACH() })
	r.t2 = sim.NewTimeout(eng, cfg.T2, func(sim.Time) { r.demoteToIdle() })
	r.promotedFn = r.promoted
	return r, nil
}

// Reset rewinds the radio to the state NewRadio would construct for cfg,
// keeping its allocations: the waiter double buffer, the tail timeouts,
// and the pre-bound promotion callback survive. Listeners and the tracer
// are dropped (the next run re-registers its own). The owning engine must
// be reset alongside: pending tail expiries and promotions are simply
// forgotten here, which the engine reset's generation bump makes safe.
func (r *Radio) Reset(cfg RRCConfig) error {
	if err := cfg.Validate(); err != nil {
		return err
	}
	r.cfg = cfg
	r.state = StateIdle
	r.transferring = false
	r.promoting = false
	for i := range r.waiters {
		r.waiters[i] = nil
	}
	r.waiters = r.waiters[:0]
	for i := range r.waitersSpare {
		r.waitersSpare[i] = nil
	}
	r.waitersSpare = r.waitersSpare[:0]
	r.t1.Rebind(cfg.T1)
	r.t2.Rebind(cfg.T2)
	r.promoEv = sim.Event{}
	r.onPower = nil
	r.onState = nil
	r.tracer = nil
	r.dwell = [StateDCH + 1]sim.Time{}
	r.lastDwell = 0
	r.promos = 0
	return nil
}

// State returns the current RRC state.
func (r *Radio) State() RRCState { return r.state }

// Promotions returns how many IDLE/FACH→DCH promotions have occurred.
func (r *Radio) Promotions() int { return r.promos }

// OnPower registers the power listener and fires it with the current draw.
func (r *Radio) OnPower(fn func(now sim.Time, watts float64)) {
	r.onPower = fn
	r.emitPower()
}

// OnState registers a state-transition listener.
func (r *Radio) OnState(fn func(now sim.Time, s RRCState)) { r.onState = fn }

// SetTracer attaches a structured tracer receiving RRC state changes.
func (r *Radio) SetTracer(tr trace.Tracer) { r.tracer = tr }

// Power returns the current radio draw in watts.
func (r *Radio) Power() float64 {
	var w float64
	switch r.state {
	case StateIdle:
		w = r.cfg.IdleW
	case StateFACH:
		w = r.cfg.FACHW
	case StateDCH:
		w = r.cfg.DCHW
		if r.transferring {
			w += r.cfg.TxExtraW
		}
	}
	return w
}

// Residency returns seconds spent in each state so far.
func (r *Radio) Residency() map[RRCState]sim.Time {
	out := make(map[RRCState]sim.Time, len(r.dwell))
	r.ResidencyInto(out)
	return out
}

// ResidencyInto fills out with seconds spent in each state so far,
// clearing it first. It is the allocation-free variant of Residency for
// result structs that recycle their maps across runs.
func (r *Radio) ResidencyInto(out map[RRCState]sim.Time) {
	clear(out)
	for s, v := range r.dwell {
		if v > 0 {
			out[RRCState(s)] = v
		}
	}
	out[r.state] += r.eng.Now() - r.lastDwell
}

func (r *Radio) emitPower() {
	if r.onPower != nil {
		r.onPower(r.eng.Now(), r.Power())
	}
}

func (r *Radio) setState(s RRCState) {
	if s == r.state {
		return
	}
	now := r.eng.Now()
	r.dwell[r.state] += now - r.lastDwell
	r.lastDwell = now
	r.state = s
	if r.onState != nil {
		r.onState(now, s)
	}
	if r.tracer != nil {
		r.tracer.RRC(trace.RRCEvent{T: now, State: s.String()})
	}
	r.emitPower()
}

// BeginActivity requests dedicated channels and calls ready once the radio
// is in DCH (immediately if it already is). Data flowing should be
// bracketed by SetTransferring.
func (r *Radio) BeginActivity(ready func()) {
	r.t1.Stop()
	r.t2.Stop()
	switch {
	case r.state == StateDCH:
		ready()
	case r.promoting:
		r.waiters = append(r.waiters, ready)
	default:
		r.promoting = true
		r.waiters = append(r.waiters, ready)
		delay := r.cfg.PromoFACH
		if r.state == StateIdle {
			delay = r.cfg.PromoIdle
		}
		r.promos++
		r.promoEv = r.eng.Schedule(delay, r.promotedFn)
	}
}

// promoted completes an IDLE/FACH→DCH promotion and wakes the waiters.
func (r *Radio) promoted() {
	r.promoting = false
	r.promoEv = sim.Event{}
	r.setState(StateDCH)
	// Swap the waiter buffers so callbacks that re-enter BeginActivity
	// append to a fresh slice while this one drains; both retain their
	// capacity across promotions.
	ws := r.waiters
	r.waiters = r.waitersSpare[:0]
	for _, w := range ws {
		w()
	}
	for i := range ws {
		ws[i] = nil
	}
	r.waitersSpare = ws[:0]
}

// SetTransferring marks whether user data is flowing right now (adds
// TxExtraW on DCH).
func (r *Radio) SetTransferring(active bool) {
	if r.transferring == active {
		return
	}
	r.transferring = active
	r.emitPower()
}

// EndActivity signals that the current transfer burst is over: the tail
// timer T1 is armed (or, with fast dormancy, the radio releases straight
// to IDLE).
func (r *Radio) EndActivity() {
	r.SetTransferring(false)
	if r.state != StateDCH {
		return
	}
	if r.cfg.FastDormancy {
		r.demoteToIdle()
		return
	}
	r.t1.Reset()
}

func (r *Radio) demoteToFACH() {
	if r.state != StateDCH || r.promoting {
		return
	}
	r.setState(StateFACH)
	r.t2.Reset()
}

func (r *Radio) demoteToIdle() {
	if r.promoting {
		return
	}
	r.t1.Stop()
	r.t2.Stop()
	r.setState(StateIdle)
}
