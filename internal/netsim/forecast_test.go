package netsim

import (
	"math"
	"testing"

	"videodvfs/internal/sim"
)

// TestOraclePredictMatchesRate pins the oracle contract: predictions are
// exactly the underlying model's rates, over every model shape.
func TestOraclePredictMatchesRate(t *testing.T) {
	steps := Steps{
		Trace: []Step{{Start: 0, Bps: 4e6}, {Start: 5 * sim.Second, Bps: 1e6}},
		Cycle: 8 * sim.Second,
	}
	markov, err := GenMarkovTrace(LTEStates(), 60*sim.Second, sim.Stream(3, "bw/lte"))
	if err != nil {
		t.Fatal(err)
	}
	models := []Bandwidth{Constant{Bps: 6e6}, steps, markov}
	for _, bw := range models {
		o := Oracle{BW: bw, Lookahead: 20 * sim.Second}
		if o.Horizon() != 20*sim.Second {
			t.Fatalf("horizon %v", o.Horizon())
		}
		for at := sim.Time(0); at < 40*sim.Second; at += 700 * sim.Millisecond {
			wr, wu := bw.Rate(at)
			gr, gu := o.Predict(at)
			if gr != wr || gu != wu {
				t.Fatalf("%T: Predict(%v) = (%v, %v), want (%v, %v)", bw, at, gr, gu, wr, wu)
			}
		}
	}
}

// TestNoisyDeterministicPerPiece pins the noisy forecast's determinism
// contract: the same piece always reports the same (noisy) rate, no matter
// how many times or in what order it is queried, and different seeds lie
// differently.
func TestNoisyDeterministicPerPiece(t *testing.T) {
	base := Oracle{BW: Steps{
		Trace: []Step{{Start: 0, Bps: 4e6}, {Start: 5 * sim.Second, Bps: 1e6}},
		Cycle: 10 * sim.Second,
	}, Lookahead: 30 * sim.Second}
	n1, err := NewNoisy(base, 0.3, 42)
	if err != nil {
		t.Fatal(err)
	}
	n2, err := NewNoisy(base, 0.3, 42)
	if err != nil {
		t.Fatal(err)
	}
	times := []sim.Time{0, 6 * sim.Second, 2 * sim.Second, 12 * sim.Second, 0, 6 * sim.Second}
	got := make([]float64, len(times))
	for i, at := range times {
		got[i], _ = n1.Predict(at)
	}
	// Reverse query order on a fresh twin: identical answers.
	for i := len(times) - 1; i >= 0; i-- {
		r, until := n2.Predict(times[i])
		if r != got[i] {
			t.Fatalf("Predict(%v) order-dependent: %v vs %v", times[i], r, got[i])
		}
		if until <= times[i] {
			t.Fatalf("Predict(%v): until %v does not advance", times[i], until)
		}
	}
	// Same piece, same answer.
	if got[0] != got[4] || got[1] != got[5] {
		t.Fatalf("same piece predicted differently: %v", got)
	}
	// Different pieces with the same true rate still draw independent noise
	// (cycled copies of the 4e6 piece).
	if got[0] == got[3] {
		t.Fatalf("cycled pieces drew identical noise %v — keying broken", got[0])
	}
	// A different seed lies differently.
	n3, err := NewNoisy(base, 0.3, 43)
	if err != nil {
		t.Fatal(err)
	}
	if r, _ := n3.Predict(0); r == got[0] {
		t.Fatalf("seed 43 matched seed 42's noise %v", r)
	}
	// Noise is multiplicative and finite, and zero rates stay zero.
	for at := sim.Time(0); at < 30*sim.Second; at += 330 * sim.Millisecond {
		r, _ := n1.Predict(at)
		if math.IsNaN(r) || math.IsInf(r, 0) || r < 0 {
			t.Fatalf("Predict(%v) = %v not a finite non-negative rate", at, r)
		}
	}
}

// TestNoisyZeroErrorIsTransparent pins that RelErr 0 reproduces the base
// forecast exactly, and that zero-rate (outage) pieces are never perturbed.
func TestNoisyZeroErrorIsTransparent(t *testing.T) {
	base := Oracle{BW: Steps{
		Trace: []Step{{Start: 0, Bps: 4e6}, {Start: 2 * sim.Second, Bps: 0}},
		Cycle: 4 * sim.Second,
	}, Lookahead: 10 * sim.Second}
	n, err := NewNoisy(base, 0, 7)
	if err != nil {
		t.Fatal(err)
	}
	noisy, err := NewNoisy(base, 0.5, 7)
	if err != nil {
		t.Fatal(err)
	}
	for at := sim.Time(0); at < 12*sim.Second; at += 250 * sim.Millisecond {
		wr, wu := base.Predict(at)
		gr, gu := n.Predict(at)
		if gr != wr || gu != wu {
			t.Fatalf("RelErr=0 Predict(%v) = (%v, %v), want (%v, %v)", at, gr, gu, wr, wu)
		}
		if wr == 0 {
			if r, _ := noisy.Predict(at); r != 0 {
				t.Fatalf("outage at %v predicted as %v — zero rates must stay zero", at, r)
			}
		}
	}
	if n.Horizon() != base.Horizon() {
		t.Fatalf("horizon %v, want %v", n.Horizon(), base.Horizon())
	}
}

// TestNewNoisyRejectsBadError pins constructor validation.
func TestNewNoisyRejectsBadError(t *testing.T) {
	base := Oracle{BW: Constant{Bps: 1e6}, Lookahead: 10 * sim.Second}
	for _, bad := range []float64{math.NaN(), math.Inf(1), -0.1} {
		if _, err := NewNoisy(base, bad, 1); err == nil {
			t.Fatalf("NewNoisy accepted relErr %v", bad)
		}
	}
	if _, err := NewNoisy(nil, 0.1, 1); err == nil {
		t.Fatal("NewNoisy accepted nil base")
	}
}
