package netsim

import (
	"math"
	"testing"

	"videodvfs/internal/cpu"
	"videodvfs/internal/sim"
)

func newRadio(t *testing.T, cfg RRCConfig) (*sim.Engine, *Radio) {
	t.Helper()
	eng := sim.NewEngine()
	r, err := NewRadio(eng, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return eng, r
}

func TestRadioPromotionFromIdle(t *testing.T) {
	eng, r := newRadio(t, DefaultUMTS())
	var readyAt sim.Time
	r.BeginActivity(func() { readyAt = eng.Now() })
	eng.Run()
	if readyAt != 2*sim.Second {
		t.Fatalf("DCH ready at %v, want 2s (IDLE promotion)", readyAt)
	}
	if r.State() != StateDCH {
		t.Fatalf("state = %v, want DCH", r.State())
	}
	if r.Promotions() != 1 {
		t.Fatalf("promotions = %d", r.Promotions())
	}
}

func TestRadioTailDemotions(t *testing.T) {
	cfg := DefaultUMTS()
	eng, r := newRadio(t, cfg)
	var toFACH, toIdle sim.Time
	r.OnState(func(now sim.Time, s RRCState) {
		switch s {
		case StateFACH:
			toFACH = now
		case StateIdle:
			toIdle = now
		case StateDCH:
		}
	})
	r.BeginActivity(func() { r.EndActivity() })
	eng.Run()
	// Promotion 2 s, then T1 = 4 s → FACH at 6 s, T2 = 15 s → IDLE at 21 s.
	if toFACH != 6*sim.Second {
		t.Fatalf("FACH at %v, want 6s", toFACH)
	}
	if toIdle != 21*sim.Second {
		t.Fatalf("IDLE at %v, want 21s", toIdle)
	}
}

func TestRadioFastDormancySkipsTails(t *testing.T) {
	cfg := DefaultUMTS()
	cfg.FastDormancy = true
	eng, r := newRadio(t, cfg)
	var idleAt sim.Time
	r.OnState(func(now sim.Time, s RRCState) {
		if s == StateIdle {
			idleAt = now
		}
	})
	r.BeginActivity(func() { r.EndActivity() })
	eng.Run()
	if idleAt != 2*sim.Second {
		t.Fatalf("fast dormancy released at %v, want 2s", idleAt)
	}
}

func TestRadioFACHPromotionFaster(t *testing.T) {
	cfg := DefaultUMTS()
	eng, r := newRadio(t, cfg)
	r.BeginActivity(func() { r.EndActivity() })
	// At 7 s the radio is in FACH (demoted at 6 s); promotion takes 0.7 s.
	var readyAt sim.Time
	eng.Schedule(7*sim.Second, func() {
		if r.State() != StateFACH {
			t.Errorf("state at 7s = %v, want FACH", r.State())
		}
		r.BeginActivity(func() { readyAt = eng.Now() })
	})
	eng.RunUntil(10 * sim.Second)
	want := 7*sim.Second + 700*sim.Millisecond
	if math.Abs(float64(readyAt-want)) > 1e-9 {
		t.Fatalf("FACH→DCH ready at %v, want %v", readyAt, want)
	}
}

func TestRadioActivityResetsTail(t *testing.T) {
	cfg := DefaultUMTS()
	eng, r := newRadio(t, cfg)
	r.BeginActivity(func() { r.EndActivity() }) // DCH at 2s, T1 would fire at 6s
	eng.Schedule(5*sim.Second, func() {
		r.BeginActivity(func() { r.EndActivity() }) // still DCH: immediate, re-arms T1
	})
	var toFACH sim.Time
	r.OnState(func(now sim.Time, s RRCState) {
		if s == StateFACH {
			toFACH = now
		}
	})
	eng.RunUntil(12 * sim.Second)
	if toFACH != 9*sim.Second {
		t.Fatalf("FACH at %v, want 9s (tail restarted at 5s)", toFACH)
	}
}

func TestRadioWaitersCoalesceDuringPromotion(t *testing.T) {
	eng, r := newRadio(t, DefaultUMTS())
	calls := 0
	r.BeginActivity(func() { calls++ })
	r.BeginActivity(func() { calls++ })
	eng.Run()
	if calls != 2 {
		t.Fatalf("calls = %d, want both waiters invoked", calls)
	}
	if r.Promotions() != 1 {
		t.Fatalf("promotions = %d, want 1 (coalesced)", r.Promotions())
	}
}

func TestRadioPowerLevels(t *testing.T) {
	cfg := DefaultUMTS()
	eng, r := newRadio(t, cfg)
	if r.Power() != cfg.IdleW {
		t.Fatalf("idle power = %v", r.Power())
	}
	r.BeginActivity(func() {
		if r.Power() != cfg.DCHW {
			t.Errorf("DCH power = %v, want %v", r.Power(), cfg.DCHW)
		}
		r.SetTransferring(true)
		if r.Power() != cfg.DCHW+cfg.TxExtraW {
			t.Errorf("DCH+tx power = %v", r.Power())
		}
		r.SetTransferring(false)
		r.EndActivity()
	})
	var fachPower float64
	r.OnState(func(_ sim.Time, s RRCState) {
		if s == StateFACH {
			fachPower = r.Power()
		}
	})
	eng.Run()
	if fachPower != cfg.FACHW {
		t.Fatalf("FACH power = %v, want %v", fachPower, cfg.FACHW)
	}
}

func TestRadioResidencySums(t *testing.T) {
	eng, r := newRadio(t, DefaultUMTS())
	r.BeginActivity(func() { r.EndActivity() })
	eng.Schedule(30*sim.Second, func() { eng.Stop() })
	eng.Run()
	res := r.Residency()
	var total sim.Time
	for _, d := range res {
		total += d
	}
	if math.Abs(float64(total-30*sim.Second)) > 1e-9 {
		t.Fatalf("residency sums to %v, want 30s", total)
	}
	// DCH: 2–6 s = 4 s; FACH: 6–21 s = 15 s; IDLE: 0–2 + 21–30 = 11 s.
	if math.Abs(float64(res[StateDCH]-4*sim.Second)) > 1e-9 {
		t.Fatalf("DCH residency = %v, want 4s", res[StateDCH])
	}
	if math.Abs(float64(res[StateFACH]-15*sim.Second)) > 1e-9 {
		t.Fatalf("FACH residency = %v, want 15s", res[StateFACH])
	}
}

func TestRRCConfigValidation(t *testing.T) {
	bad := []func(*RRCConfig){
		func(c *RRCConfig) { c.FACHW = c.IdleW },
		func(c *RRCConfig) { c.DCHW = c.FACHW },
		func(c *RRCConfig) { c.T1 = 0 },
		func(c *RRCConfig) { c.T2 = 0 },
		func(c *RRCConfig) { c.PromoIdle = -1 },
		func(c *RRCConfig) { c.TxExtraW = -1 },
	}
	for i, mutate := range bad {
		cfg := DefaultUMTS()
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d: want validation error", i)
		}
	}
	if err := DefaultLTE().Validate(); err != nil {
		t.Errorf("LTE default invalid: %v", err)
	}
}

func TestRRCStateString(t *testing.T) {
	if StateIdle.String() != "IDLE" || StateFACH.String() != "FACH" || StateDCH.String() != "DCH" {
		t.Fatal("state names wrong")
	}
	if RRCState(0).String() != "?" {
		t.Fatal("zero state should stringify as ?")
	}
}

func newDownloadRig(t *testing.T, bw Bandwidth, cfg DownloaderConfig) (*sim.Engine, *Radio, *cpu.Core, *Downloader) {
	t.Helper()
	eng := sim.NewEngine()
	radio, err := NewRadio(eng, DefaultUMTS())
	if err != nil {
		t.Fatal(err)
	}
	core, err := cpu.NewCore(eng, cpu.DeviceFlagship())
	if err != nil {
		t.Fatal(err)
	}
	dl, err := NewDownloader(eng, bw, radio, core, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return eng, radio, core, dl
}

func TestDownloaderConstantRateTiming(t *testing.T) {
	cfg := DefaultDownloaderConfig()
	eng, _, _, dl := newDownloadRig(t, Constant{Bps: 1e6}, cfg)
	var doneAt sim.Time
	if err := dl.Fetch(2e6, func(now sim.Time) { doneAt = now }); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	// Promotion 2 s + RTT 0.07 s + 2e6/1e6 = 2 s transfer → 4.07 s.
	want := 2*sim.Second + cfg.RTT + 2*sim.Second
	if math.Abs(float64(doneAt-want)) > 1e-6 {
		t.Fatalf("done at %v, want %v", doneAt, want)
	}
	if dl.BitsReceived() != 2e6 || dl.Fetches() != 1 {
		t.Fatalf("bits=%v fetches=%d", dl.BitsReceived(), dl.Fetches())
	}
}

func TestDownloaderChargesNetworkCPU(t *testing.T) {
	cfg := DefaultDownloaderConfig()
	eng, _, core, dl := newDownloadRig(t, Constant{Bps: 10e6}, cfg)
	if err := dl.Fetch(5e6, nil); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	got := core.CyclesByTag()["net"]
	want := 5e6 * cfg.CyclesPerBit
	if math.Abs(got-want) > 1e-3*want {
		t.Fatalf("net cycles = %v, want %v", got, want)
	}
	if dl.Err() != nil {
		t.Fatal(dl.Err())
	}
}

func TestDownloaderQueuesSequentialFetches(t *testing.T) {
	cfg := DefaultDownloaderConfig()
	eng, radio, _, dl := newDownloadRig(t, Constant{Bps: 1e6}, cfg)
	var done []sim.Time
	for i := 0; i < 2; i++ {
		if err := dl.Fetch(1e6, func(now sim.Time) { done = append(done, now) }); err != nil {
			t.Fatal(err)
		}
	}
	eng.Run()
	if len(done) != 2 {
		t.Fatalf("completed %d fetches", len(done))
	}
	if done[1] <= done[0] {
		t.Fatal("fetches not serialized")
	}
	// Only one promotion: the radio stayed in DCH across the queue.
	if radio.Promotions() != 1 {
		t.Fatalf("promotions = %d, want 1", radio.Promotions())
	}
}

func TestDownloaderOutageStallsAndResumes(t *testing.T) {
	// 1 Mbps for 1 s, outage for 2 s, then 1 Mbps again.
	bw := Steps{Trace: []Step{
		{Start: 0, Bps: 1e6},
		{Start: 3070 * sim.Millisecond, Bps: 0},
		{Start: 5070 * sim.Millisecond, Bps: 1e6},
	}}
	if err := bw.Validate(); err != nil {
		t.Fatal(err)
	}
	cfg := DefaultDownloaderConfig()
	eng, _, _, dl := newDownloadRig(t, bw, cfg)
	var doneAt sim.Time
	// Transfer starts at 2.07 s; 1 s of data flows before the outage at
	// 3.07 s; the remaining 1e6 bits resume at 5.07 s and finish at 6.07 s.
	if err := dl.Fetch(2e6, func(now sim.Time) { doneAt = now }); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	want := 6070 * sim.Millisecond
	if math.Abs(float64(doneAt-want)) > 1e-3 {
		t.Fatalf("done at %v, want ≈%v", doneAt, want)
	}
}

func TestDownloaderActivityCallback(t *testing.T) {
	cfg := DefaultDownloaderConfig()
	eng, _, _, dl := newDownloadRig(t, Constant{Bps: 1e6}, cfg)
	var transitions []bool
	dl.OnActive(func(_ sim.Time, active bool) { transitions = append(transitions, active) })
	if err := dl.Fetch(1e6, nil); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if len(transitions) != 2 || !transitions[0] || transitions[1] {
		t.Fatalf("transitions = %v, want [true false]", transitions)
	}
}

func TestDownloaderRejectsBadInputs(t *testing.T) {
	cfg := DefaultDownloaderConfig()
	eng, radio, core, dl := newDownloadRig(t, Constant{Bps: 1e6}, cfg)
	if err := dl.Fetch(0, nil); err == nil {
		t.Fatal("want error for zero-bit fetch")
	}
	if _, err := NewDownloader(eng, nil, radio, core, cfg); err == nil {
		t.Fatal("want error for nil bandwidth")
	}
	bad := cfg
	bad.NetChunk = 0
	if _, err := NewDownloader(eng, Constant{Bps: 1}, radio, core, bad); err == nil {
		t.Fatal("want error for invalid config")
	}
}

// TestRadioResidencyMatchesClockBothDormancyModes pins the fast-dormancy
// DCH→IDLE release to the same accounting contract as the timer-driven
// demotion path: both go through setState, so total residency equals the
// engine clock exactly and every transition emits its state event before
// its power event, in the same order.
func TestRadioResidencyMatchesClockBothDormancyModes(t *testing.T) {
	for _, fd := range []bool{false, true} {
		cfg := DefaultUMTS()
		cfg.FastDormancy = fd
		eng, r := newRadio(t, cfg)

		type evt struct {
			kind  string // "state" or "power"
			state RRCState
		}
		var log []evt
		r.OnState(func(_ sim.Time, s RRCState) { log = append(log, evt{"state", s}) })
		r.OnPower(func(sim.Time, float64) { log = append(log, evt{"power", r.State()}) })

		// Two activity bursts separated enough that the radio settles in
		// between (with tails or with the SCRI release).
		r.BeginActivity(func() { r.EndActivity() })
		eng.Schedule(40*sim.Second, func() {
			r.BeginActivity(func() { r.EndActivity() })
		})
		eng.Schedule(80*sim.Second, func() { eng.Stop() })
		eng.Run()

		res := r.Residency()
		var total sim.Time
		for _, d := range res {
			total += d
		}
		if math.Abs(float64(total-80*sim.Second)) > 1e-9 {
			t.Fatalf("fastDormancy=%v: residency sums to %v, want 80s", fd, total)
		}
		if fd {
			// SCRI release: DCH dwell is exactly the two promotion-to-release
			// windows (activity ends immediately after ready), with no
			// FACH time at all.
			if res[StateFACH] != 0 {
				t.Fatalf("fast dormancy spent %v in FACH, want 0", res[StateFACH])
			}
		} else if res[StateFACH] == 0 {
			t.Fatal("timer path never dwelt in FACH")
		}

		// Shared setState contract: every state transition emits the
		// state event first, then the power event for that same state.
		for i, e := range log {
			if e.kind != "state" {
				continue
			}
			if i+1 >= len(log) || log[i+1].kind != "power" || log[i+1].state != e.state {
				t.Fatalf("fastDormancy=%v: transition to %v not followed by its power event (log %v)", fd, e.state, log)
			}
		}
		if len(log) == 0 {
			t.Fatalf("fastDormancy=%v: no transitions observed", fd)
		}
	}
}
