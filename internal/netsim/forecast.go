package netsim

import (
	"fmt"
	"math"

	"videodvfs/internal/sim"
)

// Forecast exposes a bandwidth prediction as a piecewise-constant function
// of future time, mirroring the Bandwidth interface so a scheduler can
// integrate predicted deliveries exactly the way the downloader integrates
// real ones. Predictions are pure: Predict must not mutate observable
// state, and equal arguments must yield equal results regardless of query
// order — the player evaluates the forecast at every decision point and
// results must not depend on how often it asked.
type Forecast interface {
	// Predict returns the predicted rate in bits/s at t and the horizon up
	// to which that prediction holds. The horizon must be > t (or
	// sim.Forever), exactly like Bandwidth.Rate.
	Predict(t sim.Time) (bps float64, until sim.Time)
	// Horizon returns the lookahead window: how far past "now" the
	// forecast is meaningful. Schedulers must not act on predictions
	// beyond now+Horizon.
	Horizon() sim.Time
}

// Oracle is the perfect forecast: it probes the underlying Bandwidth model
// directly, so its predictions are exactly the rates the downloader will
// observe. It works mechanically over any model — Constant, Steps, Markov
// traces, recorded Traces, and cohort cell wrappers — because they all
// already answer Rate for arbitrary future times.
type Oracle struct {
	// BW is the bandwidth model being predicted.
	BW Bandwidth
	// Lookahead is the forecast window.
	Lookahead sim.Time
}

// Predict implements Forecast.
func (o Oracle) Predict(t sim.Time) (float64, sim.Time) { return o.BW.Rate(t) }

// Horizon implements Forecast.
func (o Oracle) Horizon() sim.Time { return o.Lookahead }

// Noisy degrades a forecast with seeded multiplicative error: each
// predicted piece's rate is scaled by an independent lognormal multiplier
// with mean 1 and coefficient of variation RelErr. The multiplier is keyed
// on the piece identity (its horizon bits mixed with the seed), not on a
// sequential RNG stream, so predictions are deterministic and
// query-order-independent — the same piece always lies the same way, which
// both keeps runs cacheable and models a forecaster whose error is frozen
// per channel state rather than resampled per glance.
type Noisy struct {
	base   Forecast
	relErr float64
	seed   int64
	rng    *sim.RNG
}

// NewNoisy wraps base with relative error relErr (CV of the lognormal
// rate multiplier; 0 reproduces base exactly), seeded by seed.
func NewNoisy(base Forecast, relErr float64, seed int64) (*Noisy, error) {
	if base == nil {
		return nil, fmt.Errorf("netsim: noisy forecast needs a base forecast")
	}
	if math.IsNaN(relErr) || math.IsInf(relErr, 0) || relErr < 0 {
		return nil, fmt.Errorf("netsim: forecast error %v not a finite non-negative CV", relErr)
	}
	return &Noisy{base: base, relErr: relErr, seed: seed, rng: sim.NewRNG(seed)}, nil
}

// splitmix64 finalizes a piece key into a well-mixed seed (the standard
// SplitMix64 avalanche), so adjacent piece horizons draw uncorrelated
// multipliers.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Predict implements Forecast.
func (n *Noisy) Predict(t sim.Time) (float64, sim.Time) {
	bps, until := n.base.Predict(t)
	if n.relErr == 0 || bps <= 0 || math.IsNaN(bps) || math.IsInf(bps, 0) {
		return bps, until
	}
	key := splitmix64(math.Float64bits(float64(until)) ^ uint64(n.seed))
	n.rng.Reseed(int64(key))
	return bps * n.rng.LognormalMeanCV(1, n.relErr), until
}

// Horizon implements Forecast.
func (n *Noisy) Horizon() sim.Time { return n.base.Horizon() }
