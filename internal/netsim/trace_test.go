package netsim

import (
	"bytes"
	"errors"
	"math"
	"reflect"
	"strings"
	"testing"

	"videodvfs/internal/sim"
)

// refTrace is a small two-fetch trace exercising every Rate regime:
// lead-in, inside-sample, mid-fetch stall, cross-fetch gap, and tail.
func refTrace() Trace {
	return Trace{Samples: []TraceSample{
		{Start: 0.5, End: 1.0, Bytes: 50_000, Fetch: 0},  // 800 kbit/s
		{Start: 1.2, End: 1.7, Bytes: 25_000, Fetch: 0},  // 400 kbit/s, after a 200ms stall
		{Start: 2.5, End: 3.0, Bytes: 100_000, Fetch: 1}, // 1600 kbit/s, new fetch
	}}
}

func TestTraceValidateAccepts(t *testing.T) {
	if err := refTrace().Validate(); err != nil {
		t.Fatalf("valid trace rejected: %v", err)
	}
	// Back-to-back samples (Start == previous End) are legal.
	tr := Trace{Samples: []TraceSample{
		{Start: 0, End: 1, Bytes: 10, Fetch: 0},
		{Start: 1, End: 2, Bytes: 10, Fetch: 0},
	}}
	if err := tr.Validate(); err != nil {
		t.Fatalf("contiguous samples rejected: %v", err)
	}
}

func TestTraceValidateRejects(t *testing.T) {
	cases := []struct {
		name    string
		samples []TraceSample
	}{
		{"empty", nil},
		{"nan start", []TraceSample{{Start: sim.Time(math.NaN()), End: 1, Bytes: 1}}},
		{"inf end", []TraceSample{{Start: 0, End: sim.Time(math.Inf(1)), Bytes: 1}}},
		{"nan bytes", []TraceSample{{Start: 0, End: 1, Bytes: math.NaN()}}},
		{"negative start", []TraceSample{{Start: -0.1, End: 1, Bytes: 1}}},
		{"zero span", []TraceSample{{Start: 1, End: 1, Bytes: 1}}},
		{"inverted span", []TraceSample{{Start: 2, End: 1, Bytes: 1}}},
		{"zero bytes", []TraceSample{{Start: 0, End: 1, Bytes: 0}}},
		{"negative bytes", []TraceSample{{Start: 0, End: 1, Bytes: -5}}},
		{"negative fetch", []TraceSample{{Start: 0, End: 1, Bytes: 1, Fetch: -1}}},
		{"overlap", []TraceSample{
			{Start: 0, End: 1, Bytes: 1},
			{Start: 0.5, End: 2, Bytes: 1},
		}},
		{"fetch decreases", []TraceSample{
			{Start: 0, End: 1, Bytes: 1, Fetch: 1},
			{Start: 1, End: 2, Bytes: 1, Fetch: 0},
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := Trace{Samples: tc.samples}.Validate()
			if !errors.Is(err, ErrInvalidTrace) {
				t.Fatalf("Validate = %v, want ErrInvalidTrace", err)
			}
		})
	}
}

func TestTraceRateRegimes(t *testing.T) {
	tr := refTrace()
	cases := []struct {
		name      string
		now       sim.Time
		wantRate  float64
		wantUntil sim.Time
	}{
		// Lead-in before the first sample: upcoming rate, so a replayed
		// fetch that starts at t=0 doesn't stall on recorder lead time.
		{"lead-in", 0.0, 800e3, 1.0},
		{"inside first", 0.6, 800e3, 1.0},
		{"at sample start", 0.5, 800e3, 1.0},
		// Gap between samples 0 and 1, same fetch: the wire stalled.
		{"mid-fetch stall", 1.1, 0, 1.2},
		{"inside second", 1.5, 400e3, 1.7},
		// Gap between fetch 0 and fetch 1: player idle, upcoming rate.
		{"cross-fetch gap", 2.0, 1600e3, 3.0},
		{"inside third", 2.75, 1600e3, 3.0},
		// Past the recording: last rate holds forever.
		{"tail", 5.0, 1600e3, sim.Forever},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rate, until := tr.Rate(tc.now)
			if math.Abs(rate-tc.wantRate) > 1e-6*math.Max(1, tc.wantRate) {
				t.Errorf("Rate(%v) rate = %v, want %v", tc.now, rate, tc.wantRate)
			}
			if until != tc.wantUntil {
				t.Errorf("Rate(%v) until = %v, want %v", tc.now, until, tc.wantUntil)
			}
		})
	}
}

// The Bandwidth contract: `until` must be strictly in the future, so the
// downloader's resume scheduling always advances time.
func TestTraceRateUntilAdvances(t *testing.T) {
	tr := refTrace()
	for now := sim.Time(0); now < 4; now += 0.05 {
		_, until := tr.Rate(now)
		if until <= now {
			t.Fatalf("Rate(%v) until = %v, not in the future", now, until)
		}
	}
}

func TestTraceAccessors(t *testing.T) {
	tr := refTrace()
	if got := tr.Duration(); got != 3.0 {
		t.Errorf("Duration = %v, want 3.0", got)
	}
	if got := tr.TotalBytes(); got != 175_000 {
		t.Errorf("TotalBytes = %v, want 175000", got)
	}
	if got := tr.Fetches(); got != 2 {
		t.Errorf("Fetches = %v, want 2", got)
	}
	if got := tr.FetchBytes(); !reflect.DeepEqual(got, []float64{75_000, 100_000}) {
		t.Errorf("FetchBytes = %v, want [75000 100000]", got)
	}
	var empty Trace
	if empty.Duration() != 0 || empty.TotalBytes() != 0 || empty.Fetches() != 0 || empty.FetchBytes() != nil {
		t.Errorf("empty-trace accessors not zero-valued")
	}
}

func TestTraceRoundTrip(t *testing.T) {
	tr := refTrace()
	// Perturb with values that stress float formatting.
	tr.Samples = append(tr.Samples, TraceSample{
		Start: 3.0000001, End: 3.1415926535897931, Bytes: 1.5, Fetch: 2,
	})
	var buf bytes.Buffer
	if err := WriteTrace(&buf, tr); err != nil {
		t.Fatalf("WriteTrace: %v", err)
	}
	got, err := ReadTrace(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("ReadTrace: %v", err)
	}
	if !reflect.DeepEqual(got, tr) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, tr)
	}
	// Re-serializing the decoded trace must be byte-identical: the
	// determinism rule the metamorphic stress test depends on.
	var buf2 bytes.Buffer
	if err := WriteTrace(&buf2, got); err != nil {
		t.Fatalf("WriteTrace (second): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Fatalf("serialization not stable:\n%s\nvs\n%s", buf.Bytes(), buf2.Bytes())
	}
}

func TestReadTraceRejects(t *testing.T) {
	hdr := `{"format":"videodvfs-bwtrace","version":1}` + "\n"
	cases := []struct {
		name string
		in   string
	}{
		{"empty input", ""},
		{"garbage header", "not json\n"},
		{"wrong format", `{"format":"other","version":1}` + "\n"},
		{"wrong version", `{"format":"videodvfs-bwtrace","version":2}` + "\n"},
		{"unknown header field", `{"format":"videodvfs-bwtrace","version":1,"x":1}` + "\n"},
		{"no samples", hdr},
		{"garbage line", hdr + "nope\n"},
		{"unknown sample field", hdr + `{"t0":0,"t1":1,"bytes":1,"fetch":0,"x":1}` + "\n"},
		{"trailing data on line", hdr + `{"t0":0,"t1":1,"bytes":1,"fetch":0} {}` + "\n"},
		{"nan literal", hdr + `{"t0":NaN,"t1":1,"bytes":1,"fetch":0}` + "\n"},
		{"negative time", hdr + `{"t0":-1,"t1":1,"bytes":1,"fetch":0}` + "\n"},
		{"inverted span", hdr + `{"t0":2,"t1":1,"bytes":1,"fetch":0}` + "\n"},
		{"zero bytes", hdr + `{"t0":0,"t1":1,"bytes":0,"fetch":0}` + "\n"},
		{"huge exponent", hdr + `{"t0":0,"t1":1e999,"bytes":1,"fetch":0}` + "\n"},
		{"non-monotonic", hdr +
			`{"t0":0,"t1":2,"bytes":1,"fetch":0}` + "\n" +
			`{"t0":1,"t1":3,"bytes":1,"fetch":0}` + "\n"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ReadTrace(strings.NewReader(tc.in))
			if !errors.Is(err, ErrInvalidTrace) {
				t.Fatalf("ReadTrace = %v, want ErrInvalidTrace", err)
			}
		})
	}
}

func TestReadTraceToleratesBlankTrailingLines(t *testing.T) {
	in := `{"format":"videodvfs-bwtrace","version":1}` + "\n" +
		`{"t0":0,"t1":1,"bytes":100,"fetch":0}` + "\n\n"
	tr, err := ReadTrace(strings.NewReader(in))
	if err != nil {
		t.Fatalf("ReadTrace: %v", err)
	}
	if len(tr.Samples) != 1 {
		t.Fatalf("got %d samples, want 1", len(tr.Samples))
	}
}
