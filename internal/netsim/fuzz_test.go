package netsim

import (
	"bytes"
	"errors"
	"testing"
)

// FuzzTraceDecode fuzzes the JSONL trace parser: arbitrary input must
// either decode to a trace that passes Validate and round-trips
// byte-stably through WriteTrace/ReadTrace, or be rejected with an error
// matching ErrInvalidTrace (NaN/Inf/negative values, non-monotonic or
// overlapping timestamps, malformed JSON). It must never panic.
func FuzzTraceDecode(f *testing.F) {
	seeds := []string{
		"",
		"{}\n",
		`{"format":"videodvfs-bwtrace","version":1}` + "\n",
		`{"format":"videodvfs-bwtrace","version":1}` + "\n" +
			`{"t0":0,"t1":1,"bytes":100,"fetch":0}` + "\n",
		`{"format":"videodvfs-bwtrace","version":1}` + "\n" +
			`{"t0":0.5,"t1":1,"bytes":50000,"fetch":0}` + "\n" +
			`{"t0":1.2,"t1":1.7,"bytes":25000,"fetch":0}` + "\n" +
			`{"t0":2.5,"t1":3,"bytes":100000,"fetch":1}` + "\n",
		`{"format":"videodvfs-bwtrace","version":2}` + "\n",
		`{"format":"videodvfs-bwtrace","version":1}` + "\n" +
			`{"t0":-1,"t1":1,"bytes":1,"fetch":0}` + "\n",
		`{"format":"videodvfs-bwtrace","version":1}` + "\n" +
			`{"t0":0,"t1":1e999,"bytes":1,"fetch":0}` + "\n",
		`{"format":"videodvfs-bwtrace","version":1}` + "\n" +
			`{"t0":3,"t1":4,"bytes":1,"fetch":0}` + "\n" +
			`{"t0":1,"t1":2,"bytes":1,"fetch":0}` + "\n",
		`{"format":"videodvfs-bwtrace","version":1}` + "\n" +
			`{"t0":0,"t1":1,"bytes":1,"fetch":0,"extra":true}` + "\n",
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := ReadTrace(bytes.NewReader(data))
		if err != nil {
			if !errors.Is(err, ErrInvalidTrace) {
				t.Fatalf("ReadTrace error %v does not match ErrInvalidTrace", err)
			}
			return
		}
		// Accepted input: the result must satisfy the trace contract...
		if verr := tr.Validate(); verr != nil {
			t.Fatalf("accepted trace fails Validate: %v", verr)
		}
		// ...and re-serialize into a stable canonical byte form.
		var buf1 bytes.Buffer
		if werr := WriteTrace(&buf1, tr); werr != nil {
			t.Fatalf("WriteTrace on accepted trace: %v", werr)
		}
		tr2, rerr := ReadTrace(bytes.NewReader(buf1.Bytes()))
		if rerr != nil {
			t.Fatalf("re-read of canonical form failed: %v", rerr)
		}
		var buf2 bytes.Buffer
		if werr := WriteTrace(&buf2, tr2); werr != nil {
			t.Fatalf("WriteTrace (second pass): %v", werr)
		}
		if !bytes.Equal(buf1.Bytes(), buf2.Bytes()) {
			t.Fatalf("canonical form not a fixed point:\n%q\nvs\n%q", buf1.Bytes(), buf2.Bytes())
		}
	})
}
