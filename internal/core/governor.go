package core

import (
	"fmt"

	"videodvfs/internal/cpu"
	"videodvfs/internal/sim"
	"videodvfs/internal/stats"
	"videodvfs/internal/trace"
	"videodvfs/internal/video"
)

// Config tunes the energy-aware governor.
type Config struct {
	// Margin inflates the predicted demand by this fraction before
	// choosing a frequency (headroom for background load, network-stack
	// interference, and DVFS stalls).
	Margin float64
	// SigmaK is the σ multiplier of the demand predictor.
	SigmaK float64
	// Alpha is the predictor's EWMA smoothing factor.
	Alpha float64
	// Predictor selects the prediction family.
	Predictor PredictorKind
	// Guard is wall-clock slack reserved per frame for display handoff
	// and DVFS transition latency.
	Guard sim.Time
	// TargetQueueFrac sets the decoded-queue setpoint as a fraction of
	// its capacity. The budget rule gives each frame
	// (ready − target + 1) frame periods, so the queue hovers at the
	// setpoint: above it the policy coasts at low frequency, below it it
	// speeds up. 0.5 is the paper default.
	TargetQueueFrac float64
	// SprintFrames floors the per-frame budget (in frame periods) when
	// the queue runs low; 0.5 means "decode at twice the sustained rate
	// to refill".
	SprintFrames float64
	// RaceToIdle drops to MinOPP whenever the decoder has nothing
	// runnable.
	RaceToIdle bool
	// StartupBoost pins the top OPP while playback has not started or is
	// stalled, matching the performance governor's startup latency.
	StartupBoost bool
	// MinOPP is the floor OPP index (background work still needs cycles).
	MinOPP int
}

// DefaultConfig returns the paper-default tuning.
func DefaultConfig() Config {
	return Config{
		Margin:          0.15,
		SigmaK:          2.0,
		Alpha:           0.12,
		Predictor:       PredictPerTypeSigma,
		Guard:           3 * sim.Millisecond,
		TargetQueueFrac: 0.5,
		SprintFrames:    0.5,
		RaceToIdle:      true,
		StartupBoost:    true,
		MinOPP:          0,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Margin < 0 || c.Margin > 2 {
		return fmt.Errorf("core: margin %v outside [0, 2]", c.Margin)
	}
	if c.SigmaK < 0 {
		return fmt.Errorf("core: negative sigma factor")
	}
	if c.Alpha <= 0 || c.Alpha > 1 {
		return fmt.Errorf("core: alpha %v outside (0, 1]", c.Alpha)
	}
	if c.Guard < 0 {
		return fmt.Errorf("core: negative guard")
	}
	if c.TargetQueueFrac <= 0 || c.TargetQueueFrac > 1 {
		return fmt.Errorf("core: target queue fraction %v outside (0, 1]", c.TargetQueueFrac)
	}
	if c.SprintFrames <= 0 || c.SprintFrames > 1 {
		return fmt.Errorf("core: sprint budget %v outside (0, 1]", c.SprintFrames)
	}
	if c.MinOPP < 0 {
		return fmt.Errorf("core: negative min OPP")
	}
	return nil
}

// PredictionStats summarizes predictor accuracy over a run.
type PredictionStats struct {
	// N is the number of predicted frames.
	N int
	// Underestimates counts frames whose true demand exceeded the
	// prediction (the dangerous direction).
	Underestimates int
	// RelErr collects |pred - actual| / actual.
	RelErr []float64
}

// UnderRate returns the underestimate fraction.
func (p PredictionStats) UnderRate() float64 {
	if p.N == 0 {
		return 0
	}
	return float64(p.Underestimates) / float64(p.N)
}

// RelErrP returns the given percentile of relative error.
func (p PredictionStats) RelErrP(pct float64) float64 {
	return stats.Percentile(p.RelErr, pct)
}

// budgetFor implements the shared queue-setpoint budget rule: the time a
// frame may take so the decoded queue is steered toward its setpoint,
// never exceeding the frame's own deadline slack.
func budgetFor(slack sim.Time, ready, queueCap int, period sim.Time,
	targetFrac, sprintFrames float64) sim.Time {
	if period <= 0 {
		// Unknown frame rate: estimate the period from slack, which
		// spans roughly ready+1 frame intervals at steady state.
		period = slack / sim.Time(float64(ready+1))
	}
	target := int(targetFrac * float64(queueCap))
	if target < 1 {
		target = 1
	}
	frames := float64(ready-target) + 1
	if frames < sprintFrames {
		frames = sprintFrames
	}
	budget := sim.Time(frames) * period
	if budget > slack {
		budget = slack
	}
	return budget
}

// FreqScaler is the hardware surface the policy drives: a single core or
// a multi-core frequency domain.
type FreqScaler interface {
	// Model returns the OPP table.
	Model() cpu.Model
	// SetOPP switches the (shared) operating point.
	SetOPP(idx int)
}

// Governor is the energy-aware video DVFS policy. It implements
// governor.Governor and player.SessionHooks; attach it to the core (or a
// cpu.Domain via AttachScaler) and pass it as the session's Hooks.
type Governor struct {
	cfg    Config
	pred   Predictor
	core   FreqScaler
	tracer trace.Tracer

	playing     bool
	downloading bool
	attached    bool
	period      sim.Time

	// Single-slot in-flight prediction record so DecodeEnd can score
	// accuracy. The decoder is strictly serial (one in-flight decode), so
	// one slot replaces the former map without changing behavior.
	predIdx int
	predVal float64
	predOK  bool

	predStats   PredictionStats
	boostFrames int
	lowFrames   int

	// Flat decision tables: the per-frame predict→slack→OPP pick reduced
	// to precomputed lookups. flatFreqs/flatMaxIdx/flatMinIdx are built at
	// attach from the scaler's model; marginF is (1 + Margin) hoisted out
	// of the loop; frames[ready] is the budget rule's frame count for each
	// decoded-queue depth, rebuilt lazily when the queue capacity changes.
	// Every table entry is computed with the exact float operations of the
	// unflattened path, so decisions are bit-identical.
	flatFreqs  []float64
	flatMaxIdx int
	flatMinIdx int
	marginF    float64
	frames     []float64
	flatTarget int
	flatQCap   int

	// legacy routes DecodeStart through the pre-flattening decision path.
	// Test-only hook: the flat-vs-legacy property tests use it as the
	// oracle, so decodeStartLegacy must stay semantically frozen.
	legacy bool
}

// New returns an energy-aware governor with the given tuning.
func New(cfg Config) (*Governor, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	pred, err := NewPredictor(cfg.Predictor, cfg.Alpha, cfg.SigmaK)
	if err != nil {
		return nil, err
	}
	return &Governor{cfg: cfg, pred: pred, marginF: 1 + cfg.Margin, flatQCap: -1}, nil
}

// Reset rewinds the governor to the state New(cfg) would construct,
// keeping its allocations: the per-frame error log's backing array, the
// flat decision tables, and — when the predictor family and parameters are
// unchanged — the predictor itself, zeroed in place. The governor detaches
// from its scaler and drops its tracer; the next run re-attaches.
func (g *Governor) Reset(cfg Config) error {
	if err := cfg.Validate(); err != nil {
		return err
	}
	if !g.resetPredictorInPlace(cfg) {
		pred, err := NewPredictor(cfg.Predictor, cfg.Alpha, cfg.SigmaK)
		if err != nil {
			return err
		}
		g.pred = pred
	}
	g.cfg = cfg
	g.core = nil
	g.tracer = nil
	g.playing = false
	g.downloading = false
	g.attached = false
	g.period = 0
	g.predIdx, g.predVal, g.predOK = 0, 0, false
	g.predStats = PredictionStats{RelErr: g.predStats.RelErr[:0]}
	g.boostFrames = 0
	g.lowFrames = 0
	g.marginF = 1 + cfg.Margin
	g.flatQCap = -1 // frames table depends on cfg: rebuild on first use
	return nil
}

// resetPredictorInPlace zeroes the existing predictor when the new config
// keeps the same family and parameters, reporting whether it could.
func (g *Governor) resetPredictorInPlace(cfg Config) bool {
	if cfg.Predictor != g.cfg.Predictor || cfg.Alpha != g.cfg.Alpha || cfg.SigmaK != g.cfg.SigmaK {
		return false
	}
	switch p := g.pred.(type) {
	case *typedPredictor:
		for i := range p.stats {
			p.stats[i] = ewmaStat{alpha: p.alpha}
		}
		return true
	case *globalPredictor:
		p.st = ewmaStat{alpha: p.st.alpha}
		return true
	}
	return false
}

// Name implements governor.Governor.
func (*Governor) Name() string { return "energyaware" }

// Attach implements governor.Governor. The governor is event-driven: it
// needs no sampling timer, only the session hooks.
func (g *Governor) Attach(eng *sim.Engine, core *cpu.Core) error {
	return g.AttachScaler(eng, core)
}

// AttachScaler attaches the policy to any frequency-scaling surface — a
// single core or a shared-clock multi-core domain.
func (g *Governor) AttachScaler(_ *sim.Engine, scaler FreqScaler) error {
	if g.attached {
		return fmt.Errorf("governor %s: already attached", g.Name())
	}
	if scaler == nil {
		return fmt.Errorf("governor %s: nil scaler", g.Name())
	}
	g.attached = true
	g.core = scaler
	model := scaler.Model()
	if cap(g.flatFreqs) < len(model.OPPs) {
		g.flatFreqs = make([]float64, len(model.OPPs))
	}
	g.flatFreqs = g.flatFreqs[:len(model.OPPs)]
	for i, o := range model.OPPs {
		g.flatFreqs[i] = o.FreqHz
	}
	g.flatMaxIdx = model.MaxIdx()
	g.flatMinIdx = g.cfg.MinOPP
	if g.flatMinIdx > g.flatMaxIdx {
		g.flatMinIdx = g.flatMaxIdx
	}
	scaler.SetOPP(g.flatMinIdx)
	return nil
}

// Detach implements governor.Governor.
func (*Governor) Detach() {}

// SetTracer attaches a structured tracer receiving one DecisionEvent per
// frequency decision. nil disables tracing; the untraced decision path
// performs no tracer calls and no allocations.
func (g *Governor) SetTracer(tr trace.Tracer) { g.tracer = tr }

// PredStats returns predictor-accuracy statistics for the run.
func (g *Governor) PredStats() PredictionStats { return g.predStats }

// BoostFrames returns how many frames ran at forced top frequency
// (startup, cold predictor, or missed slack).
func (g *Governor) BoostFrames() int { return g.boostFrames }

func (g *Governor) minOPP() int {
	if g.core == nil {
		return g.cfg.MinOPP
	}
	m := g.cfg.MinOPP
	if max := g.core.Model().MaxIdx(); m > max {
		m = max
	}
	return m
}

// StreamInfo implements player.SessionHooks: learn the frame period and
// pre-size the per-frame error log so the decode loop never regrows it.
func (g *Governor) StreamInfo(fps float64, totalFrames int) {
	if fps > 0 {
		g.period = sim.Time(1 / fps)
	}
	if totalFrames > cap(g.predStats.RelErr) {
		relErr := make([]float64, len(g.predStats.RelErr), totalFrames)
		copy(relErr, g.predStats.RelErr)
		g.predStats.RelErr = relErr
	}
}

// DecodeStart implements decode.Hooks: pick the lowest OPP whose frequency
// retires the predicted demand inside the frame's budget. The default path
// is the flat one — every per-config quantity comes from the precomputed
// tables, leaving a single branch ladder plus one linear scan over the
// frequency column.
func (g *Governor) DecodeStart(now sim.Time, f video.Frame, deadline sim.Time, ready, queueCap int) {
	if g.core == nil {
		return
	}
	if g.legacy {
		g.decodeStartLegacy(now, f, deadline, ready, queueCap)
		return
	}
	if g.cfg.StartupBoost && !g.playing {
		g.boostFrames++
		g.core.SetOPP(g.flatMaxIdx)
		if g.tracer != nil {
			g.tracer.Decision(trace.DecisionEvent{T: now, Frame: f.Index, Type: f.Type, OPP: g.flatMaxIdx, Boost: true})
		}
		return
	}
	pred, ok := g.pred.Predict(f.Type)
	if !ok {
		// Cold predictor: be safe, learn fast.
		g.boostFrames++
		g.core.SetOPP(g.flatMaxIdx)
		if g.tracer != nil {
			g.tracer.Decision(trace.DecisionEvent{T: now, Frame: f.Index, Type: f.Type, OPP: g.flatMaxIdx, Boost: true})
		}
		return
	}
	g.predIdx, g.predVal, g.predOK = f.Index, pred, true
	slack := deadline - now - g.cfg.Guard
	if slack <= 0 {
		g.boostFrames++
		g.core.SetOPP(g.flatMaxIdx)
		if g.tracer != nil {
			g.tracer.Decision(trace.DecisionEvent{T: now, Frame: f.Index, Type: f.Type,
				PredCycles: pred, Slack: slack, OPP: g.flatMaxIdx, Boost: true})
		}
		return
	}
	budget := g.flatBudget(slack, ready, queueCap)
	need := pred * g.marginF / budget.Seconds()
	// Inline IdxForFreq over the flat frequency column: first OPP that
	// meets the need, else the top (also the NaN fallthrough).
	idx := g.flatMaxIdx
	for i, hz := range g.flatFreqs {
		if hz >= need {
			idx = i
			break
		}
	}
	if idx < g.flatMinIdx {
		idx = g.flatMinIdx
	}
	if idx == g.flatMinIdx {
		g.lowFrames++
	}
	g.core.SetOPP(idx)
	if g.tracer != nil {
		g.tracer.Decision(trace.DecisionEvent{T: now, Frame: f.Index, Type: f.Type,
			PredCycles: pred, Slack: slack, Budget: budget, OPP: idx})
	}
}

// decodeStartLegacy is the pre-flattening decision path, retained verbatim
// as the oracle for the flat-table equivalence property tests. It must stay
// semantically frozen: any change here invalidates the tests' ground truth.
func (g *Governor) decodeStartLegacy(now sim.Time, f video.Frame, deadline sim.Time, ready, queueCap int) {
	model := g.core.Model()
	if g.cfg.StartupBoost && !g.playing {
		g.boostFrames++
		g.core.SetOPP(model.MaxIdx())
		if g.tracer != nil {
			g.tracer.Decision(trace.DecisionEvent{T: now, Frame: f.Index, Type: f.Type, OPP: model.MaxIdx(), Boost: true})
		}
		return
	}
	pred, ok := g.pred.Predict(f.Type)
	if !ok {
		// Cold predictor: be safe, learn fast.
		g.boostFrames++
		g.core.SetOPP(model.MaxIdx())
		if g.tracer != nil {
			g.tracer.Decision(trace.DecisionEvent{T: now, Frame: f.Index, Type: f.Type, OPP: model.MaxIdx(), Boost: true})
		}
		return
	}
	g.predIdx, g.predVal, g.predOK = f.Index, pred, true
	slack := deadline - now - g.cfg.Guard
	if slack <= 0 {
		g.boostFrames++
		g.core.SetOPP(model.MaxIdx())
		if g.tracer != nil {
			g.tracer.Decision(trace.DecisionEvent{T: now, Frame: f.Index, Type: f.Type,
				PredCycles: pred, Slack: slack, OPP: model.MaxIdx(), Boost: true})
		}
		return
	}
	budget := budgetFor(slack, ready, queueCap, g.period, g.cfg.TargetQueueFrac, g.cfg.SprintFrames)
	need := pred * (1 + g.cfg.Margin) / budget.Seconds()
	idx := model.IdxForFreq(need)
	if min := g.minOPP(); idx < min {
		idx = min
	}
	if idx == g.minOPP() {
		g.lowFrames++
	}
	g.core.SetOPP(idx)
	if g.tracer != nil {
		g.tracer.Decision(trace.DecisionEvent{T: now, Frame: f.Index, Type: f.Type,
			PredCycles: pred, Slack: slack, Budget: budget, OPP: idx})
	}
}

// flatBudget is budgetFor with the per-config arithmetic lifted into the
// frames table: frames[ready] is the clamped (ready − target + 1) count.
// The table is rebuilt only when the decoded-queue capacity changes.
func (g *Governor) flatBudget(slack sim.Time, ready, queueCap int) sim.Time {
	if queueCap != g.flatQCap {
		g.rebuildFrames(queueCap)
	}
	var frames float64
	if ready >= 0 && ready < len(g.frames) {
		frames = g.frames[ready]
	} else {
		// Out-of-table depth (never produced by the decoder, but the
		// hooks are a public surface): compute the rule directly.
		frames = float64(ready-g.flatTarget) + 1
		if frames < g.cfg.SprintFrames {
			frames = g.cfg.SprintFrames
		}
	}
	period := g.period
	if period <= 0 {
		// Unknown frame rate: estimate the period from slack, which
		// spans roughly ready+1 frame intervals at steady state.
		period = slack / sim.Time(float64(ready+1))
	}
	budget := sim.Time(frames) * period
	if budget > slack {
		budget = slack
	}
	return budget
}

// rebuildFrames precomputes the budget rule's frame counts for every
// decoded-queue depth 0..queueCap, using the exact arithmetic of budgetFor.
func (g *Governor) rebuildFrames(queueCap int) {
	target := int(g.cfg.TargetQueueFrac * float64(queueCap))
	if target < 1 {
		target = 1
	}
	n := queueCap + 1
	if n < 1 {
		n = 1
	}
	if cap(g.frames) < n {
		g.frames = make([]float64, n)
	}
	g.frames = g.frames[:n]
	for ready := range g.frames {
		fr := float64(ready-target) + 1
		if fr < g.cfg.SprintFrames {
			fr = g.cfg.SprintFrames
		}
		g.frames[ready] = fr
	}
	g.flatTarget = target
	g.flatQCap = queueCap
}

// DecodeEnd implements decode.Hooks: feed the predictor and score it.
func (g *Governor) DecodeEnd(_ sim.Time, f video.Frame, _ sim.Time, measuredCycles float64) {
	if g.predOK && g.predIdx == f.Index {
		pred := g.predVal
		g.predOK = false
		g.predStats.N++
		if measuredCycles > pred {
			g.predStats.Underestimates++
		}
		if measuredCycles > 0 {
			rel := pred - measuredCycles
			if rel < 0 {
				rel = -rel
			}
			g.predStats.RelErr = append(g.predStats.RelErr, rel/measuredCycles)
		}
	}
	g.pred.Observe(f.Type, measuredCycles)
}

// DecoderIdle implements decode.Hooks: race to the floor.
func (g *Governor) DecoderIdle(sim.Time) {
	if g.core == nil || !g.cfg.RaceToIdle {
		return
	}
	if g.cfg.StartupBoost && !g.playing && g.downloading {
		// Keep the boost while prerolling: the decoder idles only
		// momentarily between segment arrivals.
		return
	}
	g.core.SetOPP(g.flatMinIdx)
}

// PlaybackState implements player.SessionHooks.
func (g *Governor) PlaybackState(_ sim.Time, playing bool) {
	g.playing = playing
	if g.core == nil {
		return
	}
	if !playing && g.cfg.RaceToIdle {
		// Stalls are network-bound; burning CPU does not help.
		g.core.SetOPP(g.flatMinIdx)
	}
}

// DownloadActivity implements player.SessionHooks.
func (g *Governor) DownloadActivity(_ sim.Time, active bool) { g.downloading = active }

// BufferState implements player.SessionHooks. Slack already reaches the
// policy through decode deadlines and queue occupancy, so the media-buffer
// level needs no separate handling.
func (*Governor) BufferState(sim.Time, float64, int, int) {}
