package core

import (
	"fmt"

	"videodvfs/internal/cpu"
	"videodvfs/internal/decode"
	"videodvfs/internal/sim"
	"videodvfs/internal/video"
)

// ClusterConfig tunes the big.LITTLE extension of the energy-aware
// governor.
type ClusterConfig struct {
	// Policy is the per-frame frequency policy shared with the
	// single-core governor.
	Policy Config
	// LittleBias places a frame on the little cluster when its required
	// frequency fits under this fraction of the little core's fmax.
	// Below 1 it leaves headroom for the little cluster's own
	// background load.
	LittleBias float64
}

// DefaultClusterConfig returns the paper-default cluster tuning.
func DefaultClusterConfig() ClusterConfig {
	return ClusterConfig{Policy: DefaultConfig(), LittleBias: 0.85}
}

// Validate checks the configuration.
func (c ClusterConfig) Validate() error {
	if err := c.Policy.Validate(); err != nil {
		return err
	}
	if c.LittleBias <= 0 || c.LittleBias > 1 {
		return fmt.Errorf("cluster: little bias %v outside (0, 1]", c.LittleBias)
	}
	return nil
}

// ClusterGovernor is the big.LITTLE-aware extension of the energy-aware
// policy: per frame it computes the required frequency exactly as the
// single-core governor does, then places the decode job on the little
// cluster whenever that frequency fits there — the little core's
// energy-per-cycle is several times lower. Network and background jobs
// always run little; the big cluster parks at its floor when unused.
//
// It implements decode.Submitter (the session's job router) alongside
// player.SessionHooks.
type ClusterGovernor struct {
	cfg    ClusterConfig
	pred   Predictor
	big    *cpu.Core
	little *cpu.Core

	route       *cpu.Core
	playing     bool
	downloading bool
	period      sim.Time

	framesOnLittle int
	framesOnBig    int
}

// NewClusterGovernor wires the policy to a big and a little core.
func NewClusterGovernor(big, little *cpu.Core, cfg ClusterConfig) (*ClusterGovernor, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if big == nil || little == nil {
		return nil, fmt.Errorf("cluster: both cores are required")
	}
	if big.Model().Fmax() <= little.Model().Fmax() {
		return nil, fmt.Errorf("cluster: big fmax %v must exceed little fmax %v",
			big.Model().Fmax(), little.Model().Fmax())
	}
	pred, err := NewPredictor(cfg.Policy.Predictor, cfg.Policy.Alpha, cfg.Policy.SigmaK)
	if err != nil {
		return nil, err
	}
	g := &ClusterGovernor{cfg: cfg, pred: pred, big: big, little: little, route: big}
	big.SetOPP(0)
	little.SetOPP(0)
	return g, nil
}

// Name identifies the policy in reports.
func (*ClusterGovernor) Name() string { return "energyaware-cluster" }

// FramesOnLittle returns how many decode jobs ran on the little cluster.
func (g *ClusterGovernor) FramesOnLittle() int { return g.framesOnLittle }

// FramesOnBig returns how many decode jobs ran on the big cluster.
func (g *ClusterGovernor) FramesOnBig() int { return g.framesOnBig }

// Submit implements decode.Submitter: decode jobs follow the route chosen
// at DecodeStart; everything else (network stack, UI) runs little, as
// vendor energy-aware schedulers place them.
func (g *ClusterGovernor) Submit(j *cpu.Job) error {
	if j != nil && j.Priority == cpu.PrioDecode {
		return g.route.Submit(j)
	}
	return g.little.Submit(j)
}

// StreamInfo implements player.SessionHooks.
func (g *ClusterGovernor) StreamInfo(fps float64, _ int) {
	if fps > 0 {
		g.period = sim.Time(1 / fps)
	}
}

// DecodeStart implements decode.Hooks: choose cluster and OPP.
func (g *ClusterGovernor) DecodeStart(now sim.Time, f video.Frame, deadline sim.Time, ready, queueCap int) {
	pol := g.cfg.Policy
	if pol.StartupBoost && !g.playing {
		g.placeBig(g.big.Model().MaxIdx())
		return
	}
	pred, ok := g.pred.Predict(f.Type)
	if !ok {
		g.placeBig(g.big.Model().MaxIdx())
		return
	}
	slack := deadline - now - pol.Guard
	if slack <= 0 {
		g.placeBig(g.big.Model().MaxIdx())
		return
	}
	budget := budgetFor(slack, ready, queueCap, g.period, pol.TargetQueueFrac, pol.SprintFrames)
	need := pred * (1 + pol.Margin) / budget.Seconds()
	if need <= g.cfg.LittleBias*g.little.Model().Fmax() {
		g.placeLittle(g.little.Model().IdxForFreq(need))
		return
	}
	g.placeBig(g.big.Model().IdxForFreq(need))
}

func (g *ClusterGovernor) placeBig(opp int) {
	g.route = g.big
	g.framesOnBig++
	g.big.SetOPP(opp)
}

func (g *ClusterGovernor) placeLittle(opp int) {
	g.route = g.little
	g.framesOnLittle++
	g.little.SetOPP(opp)
	// Big has no decode work: park it.
	if g.cfg.Policy.RaceToIdle {
		g.big.SetOPP(0)
	}
}

// DecodeEnd implements decode.Hooks.
func (g *ClusterGovernor) DecodeEnd(_ sim.Time, f video.Frame, _ sim.Time, measuredCycles float64) {
	g.pred.Observe(f.Type, measuredCycles)
}

// DecoderIdle implements decode.Hooks.
func (g *ClusterGovernor) DecoderIdle(sim.Time) {
	if !g.cfg.Policy.RaceToIdle {
		return
	}
	if g.cfg.Policy.StartupBoost && !g.playing && g.downloading {
		return
	}
	g.big.SetOPP(0)
	g.little.SetOPP(0)
}

// PlaybackState implements player.SessionHooks.
func (g *ClusterGovernor) PlaybackState(_ sim.Time, playing bool) {
	g.playing = playing
	if !playing && g.cfg.Policy.RaceToIdle {
		g.big.SetOPP(0)
		g.little.SetOPP(0)
	}
}

// DownloadActivity implements player.SessionHooks.
func (g *ClusterGovernor) DownloadActivity(_ sim.Time, active bool) { g.downloading = active }

// BufferState implements player.SessionHooks.
func (*ClusterGovernor) BufferState(sim.Time, float64, int, int) {}

// Compile-time checks.
var (
	_ decode.Submitter = (*ClusterGovernor)(nil)
)
