package core

import (
	"testing"

	"videodvfs/internal/cpu"
	"videodvfs/internal/sim"
	"videodvfs/internal/video"
)

func clusterRig(t *testing.T) (*sim.Engine, *cpu.Core, *cpu.Core) {
	t.Helper()
	eng := sim.NewEngine()
	big, err := cpu.NewCore(eng, cpu.DeviceFlagship())
	if err != nil {
		t.Fatal(err)
	}
	little, err := cpu.NewCore(eng, cpu.DeviceEfficient())
	if err != nil {
		t.Fatal(err)
	}
	return eng, big, little
}

func warmCluster(t *testing.T, big, little *cpu.Core, cycles float64) *ClusterGovernor {
	t.Helper()
	g, err := NewClusterGovernor(big, little, DefaultClusterConfig())
	if err != nil {
		t.Fatal(err)
	}
	g.StreamInfo(30, 0)
	for i := 0; i < 60; i++ {
		g.DecodeEnd(0, pFrame(i, cycles), 0, cycles)
	}
	g.PlaybackState(0, true)
	return g
}

func TestClusterRoutesLightFramesToLittle(t *testing.T) {
	_, big, little := clusterRig(t)
	// 10 M cycles with a 1-period budget needs 345 MHz — well inside the
	// little cluster (fmax 1.4 GHz).
	g := warmCluster(t, big, little, 10e6)
	g.DecodeStart(0, pFrame(100, 10e6), sim.Second, 4, 8)
	if g.FramesOnLittle() != 1 || g.FramesOnBig() != 0 {
		t.Fatalf("placement little=%d big=%d, want little", g.FramesOnLittle(), g.FramesOnBig())
	}
	// The decode route must point at little; big parks at its floor.
	if big.OPP() != 0 {
		t.Fatalf("big OPP = %d, want parked", big.OPP())
	}
	if little.FreqHz() < 10e6*1.15*30 {
		t.Fatalf("little frequency %.0f below the need", little.FreqHz())
	}
}

func TestClusterRoutesHeavyFramesToBig(t *testing.T) {
	_, big, little := clusterRig(t)
	// 60 M cycles × 30 fps × margin needs ≈2.1 GHz — beyond little.
	g := warmCluster(t, big, little, 60e6)
	g.DecodeStart(0, pFrame(100, 60e6), sim.Second, 4, 8)
	if g.FramesOnBig() != 1 {
		t.Fatalf("placement little=%d big=%d, want big", g.FramesOnLittle(), g.FramesOnBig())
	}
	if big.FreqHz() < 2e9 {
		t.Fatalf("big frequency %.2g too low for the demand", big.FreqHz())
	}
	_ = little
}

func TestClusterSubmitRouting(t *testing.T) {
	eng, big, little := clusterRig(t)
	g := warmCluster(t, big, little, 10e6)
	// Decode goes to the current route (little after a light frame).
	g.DecodeStart(0, pFrame(0, 10e6), sim.Second, 4, 8)
	if err := g.Submit(&cpu.Job{Cycles: 1e6, Priority: cpu.PrioDecode, Tag: "decode"}); err != nil {
		t.Fatal(err)
	}
	// Background always goes little.
	if err := g.Submit(&cpu.Job{Cycles: 1e6, Priority: cpu.PrioBackground, Tag: "bg"}); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	littleCycles := little.CyclesByTag()
	if littleCycles["decode"] != 1e6 || littleCycles["bg"] != 1e6 {
		t.Fatalf("little cycles = %v, want decode+bg routed there", littleCycles)
	}
	if big.CyclesByTag()["decode"] != 0 {
		t.Fatal("big should have no decode work")
	}
}

func TestClusterStartupBoostUsesBig(t *testing.T) {
	_, big, little := clusterRig(t)
	g := warmCluster(t, big, little, 10e6)
	g.PlaybackState(0, false)
	g.DecodeStart(0, pFrame(0, 10e6), sim.Second, 4, 8)
	if g.FramesOnBig() != 1 {
		t.Fatal("startup decode should run on big at fmax")
	}
	if big.OPP() != big.Model().MaxIdx() {
		t.Fatalf("big OPP = %d, want max during startup", big.OPP())
	}
}

func TestClusterIdleParksBothClusters(t *testing.T) {
	_, big, little := clusterRig(t)
	g := warmCluster(t, big, little, 10e6)
	big.SetOPP(5)
	little.SetOPP(5)
	g.DecoderIdle(0)
	if big.OPP() != 0 || little.OPP() != 0 {
		t.Fatalf("idle OPPs big=%d little=%d, want both parked", big.OPP(), little.OPP())
	}
}

func TestClusterValidation(t *testing.T) {
	_, big, little := clusterRig(t)
	if _, err := NewClusterGovernor(nil, little, DefaultClusterConfig()); err == nil {
		t.Error("want error for nil big")
	}
	if _, err := NewClusterGovernor(little, big, DefaultClusterConfig()); err == nil {
		t.Error("want error when little out-clocks big")
	}
	bad := DefaultClusterConfig()
	bad.LittleBias = 0
	if _, err := NewClusterGovernor(big, little, bad); err == nil {
		t.Error("want error for zero bias")
	}
	bad = DefaultClusterConfig()
	bad.Policy.Alpha = 0
	if _, err := NewClusterGovernor(big, little, bad); err == nil {
		t.Error("want error for invalid policy")
	}
}

func TestClusterColdPredictorBoostsBig(t *testing.T) {
	_, big, little := clusterRig(t)
	g, err := NewClusterGovernor(big, little, DefaultClusterConfig())
	if err != nil {
		t.Fatal(err)
	}
	g.PlaybackState(0, true)
	g.DecodeStart(0, video.Frame{Index: 0, Type: video.FrameP, Cycles: 1e6}, sim.Second, 4, 8)
	if g.FramesOnBig() != 1 || big.OPP() != big.Model().MaxIdx() {
		t.Fatal("cold predictor should boost on big")
	}
}
