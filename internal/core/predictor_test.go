package core

import (
	"math"
	"testing"
	"testing/quick"

	"videodvfs/internal/video"
)

// TestEwmaStatWarmupContract pins the cold-start semantics the governor
// depends on: after ONE observation the stat already answers predictions,
// but with dev2 = 0 — a bare single-sample mean whose kσ margin is zero
// regardless of k. The second frame of a type is therefore predicted with
// false confidence; callers needing a conservative cold start must layer
// their own floor (the governor's fallback demand does).
func TestEwmaStatWarmupContract(t *testing.T) {
	s := ewmaStat{alpha: 0.2}
	if _, ok := s.predict(3); ok {
		t.Fatal("unobserved stat should not predict")
	}
	s.observe(1e7)
	got, ok := s.predict(3)
	if !ok {
		t.Fatal("stat with one sample must predict (the documented contract)")
	}
	if got != 1e7 {
		t.Fatalf("single-sample predict(k=3) = %v, want bare mean 1e7 (dev2 must be 0)", got)
	}
	if s.dev2 != 0 {
		t.Fatalf("dev2 after first observation = %v, want 0", s.dev2)
	}
	// From the second observation on, the deviation term engages and k
	// starts buying real margin.
	s.observe(2e7)
	mean, _ := s.predict(0)
	withMargin, _ := s.predict(3)
	if withMargin <= mean {
		t.Fatalf("predict(3)=%v not above predict(0)=%v after two distinct samples", withMargin, mean)
	}
}

// TestEwmaStatPredictMonotoneInK: for any observation history, predict is
// nondecreasing in the safety factor k ≥ 0 (the margin term k·σ can only
// grow). The governor's safety-factor sweep relies on this monotonicity.
func TestEwmaStatPredictMonotoneInK(t *testing.T) {
	f := func(raw []uint32, k1Raw, k2Raw uint8) bool {
		if len(raw) == 0 {
			return true
		}
		s := ewmaStat{alpha: 0.3}
		for _, r := range raw {
			s.observe(float64(r))
		}
		k1 := float64(k1Raw) / 16
		k2 := float64(k2Raw) / 16
		if k1 > k2 {
			k1, k2 = k2, k1
		}
		p1, ok1 := s.predict(k1)
		p2, ok2 := s.predict(k2)
		return ok1 && ok2 && p1 <= p2 && !math.IsNaN(p1) && !math.IsNaN(p2)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestTypedPredictorPerTypeIsolation: observations of one frame type must
// not leak into another type's prediction (the array-indexed predictor
// keeps fully independent per-type state).
func TestTypedPredictorPerTypeIsolation(t *testing.T) {
	p, err := NewPredictor(PredictPerTypeSigma, 0.2, 2)
	if err != nil {
		t.Fatal(err)
	}
	p.Observe(video.FrameI, 5e7)
	if _, ok := p.Predict(video.FrameP); ok {
		t.Fatal("P-frame prediction available after observing only I frames")
	}
	got, ok := p.Predict(video.FrameI)
	if !ok || got != 5e7 {
		t.Fatalf("I-frame predict = %v/%v, want 5e7/true", got, ok)
	}
}
