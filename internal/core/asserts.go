package core

import (
	"videodvfs/internal/governor"
	"videodvfs/internal/player"
)

// Compile-time checks: both policies plug into the cpufreq framework and
// the player's video-aware hook surface.
var (
	_ governor.Governor   = (*Governor)(nil)
	_ player.SessionHooks = (*Governor)(nil)
	_ governor.Governor   = (*Oracle)(nil)
	_ player.SessionHooks = (*Oracle)(nil)
	_ player.SessionHooks = (*ClusterGovernor)(nil)
)
