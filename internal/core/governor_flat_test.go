package core

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"videodvfs/internal/cpu"
	"videodvfs/internal/sim"
	"videodvfs/internal/trace"
	"videodvfs/internal/video"
)

// The flat decision path (precomputed frequency column + budget table) must
// be pointwise equivalent to the original predict → slack → OPP pick it
// replaced. decodeStartLegacy is that original path, kept semantically
// frozen behind the test-only `legacy` flag as the oracle; the property
// tests below drive both paths through identical randomized scenarios —
// random device tables, predictor states, buffer depths, slack values,
// playback-state interleavings — and require bit-identical decisions,
// trace events, and counters.

// recordScaler logs every SetOPP so two governors' decision sequences can
// be compared verbatim.
type recordScaler struct {
	model cpu.Model
	opps  []int
}

func (s *recordScaler) Model() cpu.Model { return s.model }
func (s *recordScaler) SetOPP(idx int)   { s.opps = append(s.opps, idx) }

// recordTracer logs the structured decision stream.
type recordTracer struct {
	trace.Nop
	decisions []trace.DecisionEvent
}

func (r *recordTracer) Decision(e trace.DecisionEvent) { r.decisions = append(r.decisions, e) }

// flatScenario is one randomized governor workload. It implements
// quick.Generator so testing/quick can draw structurally valid instances:
// an ascending-frequency OPP table, a valid Config, and a frame/event
// script exercising every branch of the decision ladder.
type flatScenario struct {
	model cpu.Model
	cfg   Config
	fps   float64
	steps []flatStep
}

// flatStep is one scripted hook invocation.
type flatStep struct {
	op       int // 0 = DecodeStart(+DecodeEnd), 1 = PlaybackState, 2 = DownloadActivity, 3 = DecoderIdle
	ftype    video.FrameType
	slack    sim.Time // deadline − now offset (may be ≤ guard to force boosts)
	ready    int
	queueCap int
	cycles   float64 // measured demand fed back via DecodeEnd
	endFirst bool     // score DecodeEnd for the PREVIOUS frame before this start
	flag     bool     // playing / downloading argument
}

// Generate implements quick.Generator.
func (flatScenario) Generate(r *rand.Rand, _ int) reflect.Value {
	nOPP := 2 + r.Intn(14)
	opps := make([]cpu.OPP, nOPP)
	hz := 1e8 * (1 + r.Float64())
	for i := range opps {
		hz += 1e7 + r.Float64()*4e8 // strictly ascending, 10 MHz–400 MHz steps
		opps[i] = cpu.OPP{FreqHz: hz, VoltageV: 0.6 + 0.05*float64(i), ActiveW: 0.3 + 0.2*float64(i), IdleW: 0.05}
	}
	model := cpu.Model{Name: "prop", OPPs: opps}

	cfg := DefaultConfig()
	cfg.Margin = r.Float64() * 2
	cfg.SigmaK = r.Float64() * 4
	cfg.Alpha = 0.01 + r.Float64()*0.99
	cfg.Guard = sim.Time(r.Float64() * 5 * float64(sim.Millisecond))
	cfg.TargetQueueFrac = 0.05 + r.Float64()*0.95
	cfg.SprintFrames = 0.05 + r.Float64()*0.95
	cfg.RaceToIdle = r.Intn(2) == 0
	cfg.StartupBoost = r.Intn(2) == 0
	cfg.MinOPP = r.Intn(nOPP + 2) // may exceed MaxIdx: exercises the clamp
	cfg.Predictor = PredictorKind(1 + r.Intn(3))

	var fps float64
	if r.Intn(4) > 0 {
		fps = []float64{24, 30, 60}[r.Intn(3)]
	} // else 0: the period≤0 estimate-from-slack fallback

	steps := make([]flatStep, 40+r.Intn(120))
	for i := range steps {
		st := flatStep{
			op:       r.Intn(8), // DecodeStart-heavy mix
			ftype:    video.FrameType(1 + r.Intn(3)),
			slack:    sim.Time((r.Float64()*80 - 10) * float64(sim.Millisecond)), // negatives force the slack≤0 boost
			ready:    r.Intn(12) - 1,                                            // −1 exercises the out-of-table fallback
			queueCap: 1 + r.Intn(12),
			cycles:   1e6 + r.Float64()*5e8,
			endFirst: r.Intn(4) > 0, // sometimes skip scoring: stale-slot handling
			flag:     r.Intn(2) == 0,
		}
		if st.op > 3 {
			st.op = 0
		}
		steps[i] = st
	}
	return reflect.ValueOf(flatScenario{model: model, cfg: cfg, fps: fps, steps: steps})
}

// playScenario drives one governor through the scenario's script and
// returns everything observable about its behavior.
func playScenario(t *testing.T, sc flatScenario, legacy bool) (*recordScaler, *recordTracer, *Governor) {
	t.Helper()
	g, err := New(sc.cfg)
	if err != nil {
		t.Fatalf("New(%+v): %v", sc.cfg, err)
	}
	g.legacy = legacy
	scaler := &recordScaler{model: sc.model}
	if err := g.AttachScaler(nil, scaler); err != nil {
		t.Fatal(err)
	}
	tr := &recordTracer{}
	g.SetTracer(tr)
	g.StreamInfo(sc.fps, len(sc.steps))

	now := sim.Time(0)
	frame := 0
	var prev video.Frame
	havePrev := false
	for _, st := range sc.steps {
		now += sim.Millisecond
		switch st.op {
		case 0:
			if st.endFirst && havePrev {
				g.DecodeEnd(now, prev, now, st.cycles)
				havePrev = false
			}
			f := video.Frame{Index: frame, Type: st.ftype}
			frame++
			g.DecodeStart(now, f, now+st.slack, st.ready, st.queueCap)
			prev, havePrev = f, true
		case 1:
			g.PlaybackState(now, st.flag)
		case 2:
			g.DownloadActivity(now, st.flag)
		case 3:
			g.DecoderIdle(now)
		}
	}
	return scaler, tr, g
}

// TestFlatGovernorEquivalence is the headline property: for random device
// tables, tunings, predictor states, and hook interleavings, the flat path
// and the legacy oracle emit identical SetOPP sequences, identical decision
// events, and identical accuracy counters.
func TestFlatGovernorEquivalence(t *testing.T) {
	prop := func(sc flatScenario) bool {
		flatScaler, flatTr, flatG := playScenario(t, sc, false)
		legScaler, legTr, legG := playScenario(t, sc, true)

		if !reflect.DeepEqual(flatScaler.opps, legScaler.opps) {
			t.Logf("SetOPP sequences diverge:\nflat:   %v\nlegacy: %v\ncfg: %+v", flatScaler.opps, legScaler.opps, sc.cfg)
			return false
		}
		if !reflect.DeepEqual(flatTr.decisions, legTr.decisions) {
			t.Logf("decision events diverge:\nflat:   %+v\nlegacy: %+v", flatTr.decisions, legTr.decisions)
			return false
		}
		if flatG.BoostFrames() != legG.BoostFrames() || flatG.lowFrames != legG.lowFrames {
			t.Logf("counters diverge: boost %d/%d low %d/%d",
				flatG.BoostFrames(), legG.BoostFrames(), flatG.lowFrames, legG.lowFrames)
			return false
		}
		if !reflect.DeepEqual(flatG.PredStats(), legG.PredStats()) {
			t.Logf("pred stats diverge:\nflat:   %+v\nlegacy: %+v", flatG.PredStats(), legG.PredStats())
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestFlatBudgetEquivalence checks the budget stage alone, pointwise:
// flatBudget (table lookup + fallbacks) must equal budgetFor for random
// slack/ready/queueCap/period tuples, including queue-capacity changes that
// force table rebuilds mid-sequence.
func TestFlatBudgetEquivalence(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		cfg := DefaultConfig()
		cfg.TargetQueueFrac = 0.05 + r.Float64()*0.95
		cfg.SprintFrames = 0.05 + r.Float64()*0.95
		g, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 200; i++ {
			slack := sim.Time(r.Float64() * 0.2 * float64(sim.Second))
			if slack == 0 {
				slack = sim.Millisecond
			}
			ready := r.Intn(20) - 2
			queueCap := r.Intn(16) // includes 0: the n<1 guard
			if r.Intn(3) == 0 {
				g.period = 0
			} else {
				g.period = sim.Time(1 / []float64{24, 30, 60}[r.Intn(3)])
			}
			got := g.flatBudget(slack, ready, queueCap)
			want := budgetFor(slack, ready, queueCap, g.period, cfg.TargetQueueFrac, cfg.SprintFrames)
			if got != want && !(math.IsNaN(float64(got)) && math.IsNaN(float64(want))) {
				t.Logf("flatBudget(%v, %d, %d, period=%v) = %v, budgetFor = %v",
					slack, ready, queueCap, g.period, got, want)
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestFlatFreqScanEquivalence checks the OPP pick alone: the inline scan
// over the flat frequency column must match Model.IdxForFreq for every
// need value, including the non-finite ones a degenerate budget produces.
func TestFlatFreqScanEquivalence(t *testing.T) {
	prop := func(sc flatScenario) bool {
		needs := []float64{0, -1, 1, math.NaN(), math.Inf(1), math.Inf(-1),
			sc.model.Fmin(), sc.model.Fmax(), sc.model.Fmax() + 1, sc.model.Fmin() - 1}
		for _, o := range sc.model.OPPs {
			needs = append(needs, o.FreqHz, o.FreqHz*0.999, o.FreqHz*1.001)
		}
		g, err := New(sc.cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := g.AttachScaler(nil, &recordScaler{model: sc.model}); err != nil {
			t.Fatal(err)
		}
		for _, need := range needs {
			idx := g.flatMaxIdx
			for i, hz := range g.flatFreqs {
				if hz >= need {
					idx = i
					break
				}
			}
			if want := sc.model.IdxForFreq(need); idx != want {
				t.Logf("flat scan(%v) = %d, IdxForFreq = %d", need, idx, want)
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestGovernorResetEquivalence: a Reset governor must behave exactly like a
// newly constructed one on the same scenario — including across configs
// that swap the predictor family (forcing reconstruction) and configs that
// keep it (zeroed in place).
func TestGovernorResetEquivalence(t *testing.T) {
	prop := func(first, second flatScenario) bool {
		recycled, err := New(first.cfg)
		if err != nil {
			t.Fatal(err)
		}
		// Dirty the governor thoroughly with the first scenario…
		recycled.legacy = false
		scaler := &recordScaler{model: first.model}
		if err := recycled.AttachScaler(nil, scaler); err != nil {
			t.Fatal(err)
		}
		recycled.StreamInfo(first.fps, len(first.steps))
		now := sim.Time(0)
		for i, st := range first.steps {
			now += sim.Millisecond
			f := video.Frame{Index: i, Type: st.ftype}
			recycled.DecodeStart(now, f, now+st.slack, st.ready, st.queueCap)
			recycled.DecodeEnd(now, f, now, st.cycles)
		}
		// …then Reset into the second config and replay it against fresh.
		if err := recycled.Reset(second.cfg); err != nil {
			t.Fatal(err)
		}
		rs := &recordScaler{model: second.model}
		if err := recycled.AttachScaler(nil, rs); err != nil {
			t.Fatal(err)
		}
		rt := &recordTracer{}
		recycled.SetTracer(rt)
		recycled.StreamInfo(second.fps, len(second.steps))
		now = 0
		frame := 0
		for _, st := range second.steps {
			now += sim.Millisecond
			switch st.op {
			case 0:
				f := video.Frame{Index: frame, Type: st.ftype}
				frame++
				recycled.DecodeStart(now, f, now+st.slack, st.ready, st.queueCap)
				if st.endFirst {
					recycled.DecodeEnd(now, f, now, st.cycles)
				}
			case 1:
				recycled.PlaybackState(now, st.flag)
			case 2:
				recycled.DownloadActivity(now, st.flag)
			case 3:
				recycled.DecoderIdle(now)
			}
		}

		fresh, err := New(second.cfg)
		if err != nil {
			t.Fatal(err)
		}
		fs := &recordScaler{model: second.model}
		if err := fresh.AttachScaler(nil, fs); err != nil {
			t.Fatal(err)
		}
		ft := &recordTracer{}
		fresh.SetTracer(ft)
		fresh.StreamInfo(second.fps, len(second.steps))
		now = 0
		frame = 0
		for _, st := range second.steps {
			now += sim.Millisecond
			switch st.op {
			case 0:
				f := video.Frame{Index: frame, Type: st.ftype}
				frame++
				fresh.DecodeStart(now, f, now+st.slack, st.ready, st.queueCap)
				if st.endFirst {
					fresh.DecodeEnd(now, f, now, st.cycles)
				}
			case 1:
				fresh.PlaybackState(now, st.flag)
			case 2:
				fresh.DownloadActivity(now, st.flag)
			case 3:
				fresh.DecoderIdle(now)
			}
		}

		if !reflect.DeepEqual(rs.opps, fs.opps) {
			t.Logf("reset SetOPP diverges:\nrecycled: %v\nfresh:    %v", rs.opps, fs.opps)
			return false
		}
		if !reflect.DeepEqual(rt.decisions, ft.decisions) {
			t.Logf("reset decisions diverge")
			return false
		}
		if !reflect.DeepEqual(recycled.PredStats(), fresh.PredStats()) {
			t.Logf("reset pred stats diverge:\nrecycled: %+v\nfresh:    %+v", recycled.PredStats(), fresh.PredStats())
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
