// Package core implements the paper's contribution: an energy-aware,
// video-aware CPU frequency governor for mobile streaming. Instead of
// reacting to windowed utilization like stock cpufreq governors, it
// derives, per decoded frame, the lowest operating point that meets the
// frame's display deadline given the decode-ahead buffer's slack and a
// conservative demand prediction — and races to the lowest point whenever
// the decoder is idle.
//
// The package also provides the offline-optimal oracle governor used as
// the evaluation's upper bound.
package core

import (
	"fmt"
	"math"

	"videodvfs/internal/video"
)

// PredictorKind selects the demand-prediction family (ablated in the
// evaluation's predictor experiment).
type PredictorKind int

// Predictor families.
const (
	// PredictPerTypeSigma keeps per-frame-type EWMA mean and deviation
	// and predicts mean + kσ (the paper's choice).
	PredictPerTypeSigma PredictorKind = iota + 1
	// PredictPerTypeMean keeps per-type means only (k = 0 ablation).
	PredictPerTypeMean
	// PredictGlobal keeps a single stream across all frame types.
	PredictGlobal
)

// String returns the report label.
func (k PredictorKind) String() string {
	switch k {
	case PredictPerTypeSigma:
		return "pertype+sigma"
	case PredictPerTypeMean:
		return "pertype"
	case PredictGlobal:
		return "global"
	default:
		return "?"
	}
}

// Predictor estimates the decode demand of upcoming frames from observed
// completions. Implementations are not safe for concurrent use; the
// simulator is single-threaded.
type Predictor interface {
	// Predict returns a conservative cycle estimate for a frame of type
	// t, and false while it has no basis to predict.
	Predict(t video.FrameType) (cycles float64, ok bool)
	// Observe folds a measured decode demand into the model.
	Observe(t video.FrameType, cycles float64)
}

// ewmaStat tracks an EWMA mean and an EWMA absolute deviation.
//
// Warm-up contract: the first observation seeds the mean with dev2 = 0, so
// the SECOND frame of a type is predicted from a bare single-sample mean —
// predict returns ok with zero deviation margin regardless of k. Callers
// that need a conservative cold-start must layer their own floor on top
// (the governor does, via its fallback demand).
type ewmaStat struct {
	alpha float64
	mean  float64
	dev2  float64 // EWMA of squared deviation
	init  bool
}

func (s *ewmaStat) observe(x float64) {
	if !s.init {
		s.mean = x
		s.dev2 = 0
		s.init = true
		return
	}
	d := x - s.mean
	s.mean += s.alpha * d
	s.dev2 = s.alpha*d*d + (1-s.alpha)*s.dev2
}

func (s *ewmaStat) predict(k float64) (float64, bool) {
	if !s.init {
		return 0, false
	}
	return s.mean + k*math.Sqrt(s.dev2), true
}

// typedPredictor is the per-frame-type EWMA predictor. Per-type state
// lives in a fixed array indexed by video.FrameType (I/P/B are small
// consecutive constants), so the per-frame Predict/Observe path does no
// map hashing and no allocation.
type typedPredictor struct {
	k     float64
	stats [video.FrameB + 1]ewmaStat
	alpha float64
}

func (p *typedPredictor) Predict(t video.FrameType) (float64, bool) {
	if int(t) >= len(p.stats) {
		return 0, false
	}
	return p.stats[t].predict(p.k)
}

func (p *typedPredictor) Observe(t video.FrameType, cycles float64) {
	if int(t) >= len(p.stats) {
		return
	}
	p.stats[t].observe(cycles)
}

// globalPredictor ignores frame type.
type globalPredictor struct {
	k  float64
	st ewmaStat
}

func (p *globalPredictor) Predict(video.FrameType) (float64, bool) { return p.st.predict(p.k) }

func (p *globalPredictor) Observe(_ video.FrameType, cycles float64) { p.st.observe(cycles) }

// NewPredictor constructs a predictor of the given kind with EWMA
// smoothing alpha and safety factor k (σ multiplier; ignored by the
// mean-only kinds).
func NewPredictor(kind PredictorKind, alpha, k float64) (Predictor, error) {
	if alpha <= 0 || alpha > 1 {
		return nil, fmt.Errorf("core: predictor alpha %v outside (0, 1]", alpha)
	}
	if k < 0 {
		return nil, fmt.Errorf("core: negative sigma factor %v", k)
	}
	switch kind {
	case PredictPerTypeSigma:
		return newTypedPredictor(k, alpha), nil
	case PredictPerTypeMean:
		return newTypedPredictor(0, alpha), nil
	case PredictGlobal:
		return &globalPredictor{k: k, st: ewmaStat{alpha: alpha}}, nil
	default:
		return nil, fmt.Errorf("core: unknown predictor kind %d", kind)
	}
}

func newTypedPredictor(k, alpha float64) *typedPredictor {
	p := &typedPredictor{k: k, alpha: alpha}
	for i := range p.stats {
		p.stats[i].alpha = alpha
	}
	return p
}

// PredictorKinds returns all kinds in report order.
func PredictorKinds() []PredictorKind {
	return []PredictorKind{PredictPerTypeSigma, PredictPerTypeMean, PredictGlobal}
}
