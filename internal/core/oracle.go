package core

import (
	"fmt"

	"videodvfs/internal/cpu"
	"videodvfs/internal/sim"
	"videodvfs/internal/trace"
	"videodvfs/internal/video"
)

// Oracle is the offline-optimal reference governor: at each decode start
// it reads the frame's *true* demand (which no online policy can know) and
// selects the exact minimum OPP that meets the deadline, with no margin
// beyond the configured guard. It bounds from below the energy any safe
// per-frame policy can reach on this hardware model.
type Oracle struct {
	// Guard is wall-clock slack reserved per frame (DVFS latency).
	Guard sim.Time
	// RaceToIdle drops to the floor when the decoder idles.
	RaceToIdle bool

	core     *cpu.Core
	playing  bool
	attached bool
	period   sim.Time
	tracer   trace.Tracer
}

// SetTracer attaches a structured tracer receiving one DecisionEvent per
// frequency decision; PredCycles carries the frame's true demand.
func (o *Oracle) SetTracer(tr trace.Tracer) { o.tracer = tr }

// NewOracle returns an oracle with a small guard and race-to-idle on.
func NewOracle() *Oracle {
	return &Oracle{Guard: 3 * sim.Millisecond, RaceToIdle: true}
}

// StreamInfo implements player.SessionHooks.
func (o *Oracle) StreamInfo(fps float64, _ int) {
	if fps > 0 {
		o.period = sim.Time(1 / fps)
	}
}

// Name implements governor.Governor.
func (*Oracle) Name() string { return "oracle" }

// Attach implements governor.Governor.
func (o *Oracle) Attach(_ *sim.Engine, core *cpu.Core) error {
	if o.attached {
		return fmt.Errorf("governor %s: already attached", o.Name())
	}
	o.attached = true
	o.core = core
	core.SetOPP(0)
	return nil
}

// Detach implements governor.Governor.
func (*Oracle) Detach() {}

// DecodeStart implements decode.Hooks with perfect knowledge: the same
// queue-setpoint budget rule as the online policy, but with the frame's
// true demand and no margin.
func (o *Oracle) DecodeStart(now sim.Time, f video.Frame, deadline sim.Time, ready, queueCap int) {
	if o.core == nil {
		return
	}
	model := o.core.Model()
	if !o.playing {
		o.core.SetOPP(model.MaxIdx())
		if o.tracer != nil {
			o.tracer.Decision(trace.DecisionEvent{T: now, Frame: f.Index, Type: f.Type, OPP: model.MaxIdx(), Boost: true})
		}
		return
	}
	slack := deadline - now - o.Guard
	if slack <= 0 {
		o.core.SetOPP(model.MaxIdx())
		if o.tracer != nil {
			o.tracer.Decision(trace.DecisionEvent{T: now, Frame: f.Index, Type: f.Type,
				PredCycles: f.Cycles, Slack: slack, OPP: model.MaxIdx(), Boost: true})
		}
		return
	}
	budget := budgetFor(slack, ready, queueCap, o.period, 0.5, 0.5)
	idx := model.MinIdxForCycles(f.Cycles, budget)
	o.core.SetOPP(idx)
	if o.tracer != nil {
		o.tracer.Decision(trace.DecisionEvent{T: now, Frame: f.Index, Type: f.Type,
			PredCycles: f.Cycles, Slack: slack, Budget: budget, OPP: idx})
	}
}

// DecodeEnd implements decode.Hooks.
func (*Oracle) DecodeEnd(sim.Time, video.Frame, sim.Time, float64) {}

// DecoderIdle implements decode.Hooks.
func (o *Oracle) DecoderIdle(sim.Time) {
	if o.core != nil && o.RaceToIdle {
		o.core.SetOPP(0)
	}
}

// PlaybackState implements player.SessionHooks.
func (o *Oracle) PlaybackState(_ sim.Time, playing bool) {
	o.playing = playing
	if o.core != nil && !playing && o.RaceToIdle {
		o.core.SetOPP(0)
	}
}

// DownloadActivity implements player.SessionHooks.
func (*Oracle) DownloadActivity(sim.Time, bool) {}

// BufferState implements player.SessionHooks.
func (*Oracle) BufferState(sim.Time, float64, int, int) {}
