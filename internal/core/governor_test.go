package core

import (
	"math"
	"testing"

	"videodvfs/internal/cpu"
	"videodvfs/internal/sim"
	"videodvfs/internal/video"
)

func twoOPPCore(t *testing.T) (*sim.Engine, *cpu.Core) {
	t.Helper()
	eng := sim.NewEngine()
	core, err := cpu.NewCore(eng, cpu.Model{
		Name: "test",
		OPPs: []cpu.OPP{
			{FreqHz: 1e9, VoltageV: 0.8, ActiveW: 1, IdleW: 0.1},
			{FreqHz: 2e9, VoltageV: 1.0, ActiveW: 3, IdleW: 0.2},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return eng, core
}

func pFrame(idx int, cycles float64) video.Frame {
	return video.Frame{Index: idx, Type: video.FrameP, Cycles: cycles}
}

// warmGovernor returns an attached governor with its predictor trained to
// a steady `cycles` for P frames, in playing state at 30 fps.
func warmGovernor(t *testing.T, eng *sim.Engine, core *cpu.Core, cycles float64) *Governor {
	t.Helper()
	g, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Attach(eng, core); err != nil {
		t.Fatal(err)
	}
	g.StreamInfo(30, 0)
	for i := 0; i < 60; i++ {
		g.DecodeEnd(0, pFrame(i, cycles), 0, cycles)
	}
	g.PlaybackState(0, true)
	return g
}

func TestGovernorQueueSetpointBudget(t *testing.T) {
	eng, core := twoOPPCore(t)
	g := warmGovernor(t, eng, core, 30e6)
	// cap 8 → target 4. Full-ish queue (ready 7) → budget 4 frame
	// periods ≈ 133 ms → need ≈ 259 MHz → OPP 0.
	g.DecodeStart(0, pFrame(100, 30e6), sim.Second, 7, 8)
	if core.OPP() != 0 {
		t.Fatalf("OPP = %d, want 0 with a full queue", core.OPP())
	}
	// At the setpoint (ready 4) → budget 1 period ≈ 33 ms → need
	// ≈ 1.04 GHz → OPP 1.
	g.DecodeStart(0, pFrame(101, 30e6), sim.Second, 4, 8)
	if core.OPP() != 1 {
		t.Fatalf("OPP = %d, want 1 at the setpoint", core.OPP())
	}
	// Low queue (ready 1) → sprint at half a period → still OPP 1 (max
	// of this table) but via a bigger need.
	g.DecodeStart(0, pFrame(102, 30e6), sim.Second, 1, 8)
	if core.OPP() != 1 {
		t.Fatalf("OPP = %d, want 1 while refilling", core.OPP())
	}
}

func TestGovernorBudgetCappedBySlack(t *testing.T) {
	eng, core := twoOPPCore(t)
	g := warmGovernor(t, eng, core, 80e6)
	// Full queue would grant 133 ms, but the deadline leaves only 50 ms:
	// need = 80e6·1.15/0.05 ≈ 1.84 GHz → OPP 1.
	g.DecodeStart(0, pFrame(100, 80e6), 50*sim.Millisecond+g.cfg.Guard, 7, 8)
	if core.OPP() != 1 {
		t.Fatalf("OPP = %d, want 1 when the deadline binds", core.OPP())
	}
	// Same queue, relaxed deadline → the queue rule governs → OPP 0.
	g.DecodeStart(0, pFrame(101, 80e6), sim.Second, 7, 8)
	if core.OPP() != 0 {
		t.Fatalf("OPP = %d, want 0 with relaxed deadline", core.OPP())
	}
}

func TestGovernorBoostsWhenSlackGone(t *testing.T) {
	eng, core := twoOPPCore(t)
	g := warmGovernor(t, eng, core, 80e6)
	g.DecodeStart(0, pFrame(5, 80e6), 0, 4, 8) // deadline already passed
	if core.OPP() != core.Model().MaxIdx() {
		t.Fatalf("OPP = %d, want max on missed slack", core.OPP())
	}
	if g.BoostFrames() == 0 {
		t.Fatal("boost not recorded")
	}
}

func TestGovernorBoostsWhenPredictorCold(t *testing.T) {
	eng, core := twoOPPCore(t)
	g, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Attach(eng, core); err != nil {
		t.Fatal(err)
	}
	g.PlaybackState(0, true)
	g.DecodeStart(0, pFrame(0, 80e6), sim.Second, 4, 8)
	if core.OPP() != core.Model().MaxIdx() {
		t.Fatalf("cold predictor should boost, OPP = %d", core.OPP())
	}
}

func TestGovernorStartupBoost(t *testing.T) {
	eng, core := twoOPPCore(t)
	g := warmGovernor(t, eng, core, 80e6)
	g.PlaybackState(0, false) // preroll/stall
	g.DecodeStart(0, pFrame(0, 80e6), sim.Second, 4, 8)
	if core.OPP() != core.Model().MaxIdx() {
		t.Fatalf("startup decode should boost, OPP = %d", core.OPP())
	}
}

func TestGovernorRaceToIdle(t *testing.T) {
	eng, core := twoOPPCore(t)
	g := warmGovernor(t, eng, core, 80e6)
	core.SetOPP(1)
	g.DecoderIdle(0)
	if core.OPP() != 0 {
		t.Fatalf("OPP = %d after idle, want 0", core.OPP())
	}
}

func TestGovernorRaceToIdleDisabled(t *testing.T) {
	eng, core := twoOPPCore(t)
	cfg := DefaultConfig()
	cfg.RaceToIdle = false
	g, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Attach(eng, core); err != nil {
		t.Fatal(err)
	}
	g.PlaybackState(0, true)
	core.SetOPP(1)
	g.DecoderIdle(0)
	if core.OPP() != 1 {
		t.Fatalf("OPP = %d, want unchanged with race-to-idle off", core.OPP())
	}
}

func TestGovernorKeepsBoostWhilePrerollDownloading(t *testing.T) {
	eng, core := twoOPPCore(t)
	g := warmGovernor(t, eng, core, 80e6)
	g.PlaybackState(0, false)
	g.DownloadActivity(0, true)
	core.SetOPP(1)
	g.DecoderIdle(0) // momentary idle between preroll segments
	if core.OPP() != 1 {
		t.Fatalf("OPP = %d, preroll idle should not drop the boost", core.OPP())
	}
}

func TestGovernorMinOPPFloor(t *testing.T) {
	eng, core := twoOPPCore(t)
	cfg := DefaultConfig()
	cfg.MinOPP = 1
	g, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Attach(eng, core); err != nil {
		t.Fatal(err)
	}
	if core.OPP() != 1 {
		t.Fatalf("attach should park at the floor, OPP = %d", core.OPP())
	}
	g.PlaybackState(0, true)
	for i := 0; i < 30; i++ {
		g.DecodeEnd(0, pFrame(i, 1e6), 0, 1e6)
	}
	g.DecodeStart(0, pFrame(50, 1e6), sim.Second, 4, 8) // tiny demand
	if core.OPP() != 1 {
		t.Fatalf("OPP = %d, want floor respected", core.OPP())
	}
}

func TestGovernorPredictionStats(t *testing.T) {
	eng, core := twoOPPCore(t)
	g := warmGovernor(t, eng, core, 80e6)
	// Prediction ≈ 80e6 (σ≈0); actual 100e6 → underestimate.
	g.DecodeStart(0, pFrame(200, 100e6), 100*sim.Millisecond, 4, 8)
	g.DecodeEnd(0, pFrame(200, 100e6), 100*sim.Millisecond, 100e6)
	st := g.PredStats()
	if st.N != 1 || st.Underestimates != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if math.Abs(st.RelErrP(50)-0.2) > 0.05 {
		t.Fatalf("relative error %v, want ≈0.2", st.RelErrP(50))
	}
	if st.UnderRate() != 1 {
		t.Fatalf("under rate = %v", st.UnderRate())
	}
}

// stubScaler is a FreqScaler with no event-loop machinery behind it, so
// the allocation test measures only the governor's own decision path.
type stubScaler struct {
	model cpu.Model
	opp   int
}

func (s *stubScaler) Model() cpu.Model { return s.model }
func (s *stubScaler) SetOPP(idx int)   { s.opp = idx }

// TestDecisionPathAllocFree pins the untraced hot path's contract: a
// warmed governor makes frequency decisions with zero heap allocations
// when no tracer is attached (see trace.Tracer's package doc).
func TestDecisionPathAllocFree(t *testing.T) {
	scaler := &stubScaler{model: cpu.Model{
		Name: "test",
		OPPs: []cpu.OPP{
			{FreqHz: 1e9, VoltageV: 0.8, ActiveW: 1, IdleW: 0.1},
			{FreqHz: 2e9, VoltageV: 1.0, ActiveW: 3, IdleW: 0.2},
		},
	}}
	g, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := g.AttachScaler(nil, scaler); err != nil {
		t.Fatal(err)
	}
	g.StreamInfo(30, 0)
	for i := 0; i < 60; i++ {
		g.DecodeEnd(0, pFrame(i, 30e6), 0, 30e6)
	}
	g.PlaybackState(0, true)
	f := pFrame(100, 30e6)
	// Warm once so the lastPred map entry for this index exists; the
	// steady state then rewrites it in place.
	g.DecodeStart(0, f, sim.Second, 4, 8)
	allocs := testing.AllocsPerRun(1000, func() {
		g.DecodeStart(0, f, sim.Second, 4, 8)
	})
	if allocs != 0 {
		t.Fatalf("decision path allocates %v per run, want 0", allocs)
	}
}

func TestGovernorDoubleAttach(t *testing.T) {
	eng, core := twoOPPCore(t)
	g, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Attach(eng, core); err != nil {
		t.Fatal(err)
	}
	if err := g.Attach(eng, core); err == nil {
		t.Fatal("want error on second attach")
	}
}

func TestConfigValidation(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default invalid: %v", err)
	}
	cases := []func(*Config){
		func(c *Config) { c.Margin = -0.1 },
		func(c *Config) { c.Margin = 3 },
		func(c *Config) { c.SigmaK = -1 },
		func(c *Config) { c.Alpha = 0 },
		func(c *Config) { c.Guard = -1 },
		func(c *Config) { c.MinOPP = -1 },
	}
	for i, mutate := range cases {
		cfg := DefaultConfig()
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d: want validation error", i)
		}
	}
	bad := DefaultConfig()
	bad.Predictor = PredictorKind(99)
	if _, err := New(bad); err == nil {
		t.Error("want error for unknown predictor kind")
	}
}

func TestOracleExactSelection(t *testing.T) {
	eng, core := twoOPPCore(t)
	o := NewOracle()
	if err := o.Attach(eng, core); err != nil {
		t.Fatal(err)
	}
	o.StreamInfo(30, 0)
	o.PlaybackState(0, true)
	// Full queue (ready 7, cap 8): budget = 4 periods ≈ 133 ms for
	// 30 M cycles → ≈225 MHz → OPP 0, exactly minimal.
	o.DecodeStart(0, pFrame(0, 30e6), sim.Second, 7, 8)
	if core.OPP() != 0 {
		t.Fatalf("oracle OPP = %d, want 0", core.OPP())
	}
	// At the setpoint (ready 4): budget = 1 period for 50 M cycles
	// → 1.5 GHz → OPP 1.
	o.DecodeStart(0, pFrame(1, 50e6), sim.Second, 4, 8)
	if core.OPP() != 1 {
		t.Fatalf("oracle OPP = %d, want 1", core.OPP())
	}
	o.DecodeStart(0, pFrame(2, 80e6), 0, 4, 8)
	if core.OPP() != 1 {
		t.Fatalf("oracle should boost on missed slack")
	}
}

func TestOracleRaceToIdleAndStartup(t *testing.T) {
	eng, core := twoOPPCore(t)
	o := NewOracle()
	if err := o.Attach(eng, core); err != nil {
		t.Fatal(err)
	}
	o.DecodeStart(0, pFrame(0, 1), sim.Second, 4, 8)
	if core.OPP() != 1 {
		t.Fatal("oracle should boost before playback")
	}
	o.PlaybackState(0, true)
	o.DecoderIdle(0)
	if core.OPP() != 0 {
		t.Fatal("oracle should race to idle")
	}
	if err := o.Attach(eng, core); err == nil {
		t.Fatal("want error on oracle double attach")
	}
}

func TestPredictorPerTypeLearnsSeparateMeans(t *testing.T) {
	p, err := NewPredictor(PredictPerTypeSigma, 0.2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := p.Predict(video.FrameI); ok {
		t.Fatal("cold predictor should not predict")
	}
	for i := 0; i < 200; i++ {
		p.Observe(video.FrameI, 30e6)
		p.Observe(video.FrameB, 10e6)
	}
	iPred, ok := p.Predict(video.FrameI)
	if !ok {
		t.Fatal("I prediction unavailable")
	}
	bPred, ok := p.Predict(video.FrameB)
	if !ok {
		t.Fatal("B prediction unavailable")
	}
	if math.Abs(iPred-30e6) > 1e5 || math.Abs(bPred-10e6) > 1e5 {
		t.Fatalf("per-type means wrong: I=%.3g B=%.3g", iPred, bPred)
	}
	if _, ok := p.Predict(video.FrameP); ok {
		t.Fatal("unseen type should not predict")
	}
}

func TestPredictorGlobalMergesTypes(t *testing.T) {
	p, err := NewPredictor(PredictGlobal, 0.2, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 400; i++ {
		p.Observe(video.FrameI, 30e6)
		p.Observe(video.FrameB, 10e6)
	}
	got, ok := p.Predict(video.FrameI)
	if !ok {
		t.Fatal("prediction unavailable")
	}
	// Alternating observations pull the EWMA between the two levels.
	if got < 10e6 || got > 30e6 {
		t.Fatalf("global prediction %.3g outside the sample range", got)
	}
}

func TestPredictorSigmaAddsHeadroom(t *testing.T) {
	mk := func(k float64) Predictor {
		p, err := NewPredictor(PredictPerTypeSigma, 0.2, k)
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	noisy := []float64{8e6, 12e6, 9e6, 11e6, 10e6, 13e6, 7e6}
	p0, p2 := mk(0), mk(2)
	for i := 0; i < 40; i++ {
		x := noisy[i%len(noisy)]
		p0.Observe(video.FrameP, x)
		p2.Observe(video.FrameP, x)
	}
	a, _ := p0.Predict(video.FrameP)
	b, _ := p2.Predict(video.FrameP)
	if b <= a {
		t.Fatalf("k=2 prediction (%.3g) should exceed k=0 (%.3g)", b, a)
	}
}

func TestNewPredictorValidation(t *testing.T) {
	if _, err := NewPredictor(PredictGlobal, 0, 1); err == nil {
		t.Error("want error for zero alpha")
	}
	if _, err := NewPredictor(PredictGlobal, 0.5, -1); err == nil {
		t.Error("want error for negative k")
	}
	if _, err := NewPredictor(PredictorKind(0), 0.5, 1); err == nil {
		t.Error("want error for unknown kind")
	}
}

func TestPredictorKindStrings(t *testing.T) {
	for _, k := range PredictorKinds() {
		if k.String() == "?" {
			t.Fatalf("kind %d has no label", k)
		}
	}
	if PredictorKind(0).String() != "?" {
		t.Fatal("zero kind should stringify as ?")
	}
}
