package stats

import (
	"encoding/json"
	"errors"
	"math"
	"testing"

	"videodvfs/internal/sim"
)

// Merging an empty sketch must be an exact no-op in both directions —
// the case a fleet hits whenever one worker's shard subset contributed
// no samples to a metric.
func TestSketchMergeEmpty(t *testing.T) {
	s := NewSketch(0.01)
	for _, v := range []float64{1, 2, 3, 0.5} {
		s.Add(v)
	}
	before := s.State()
	if err := s.Merge(NewSketch(0.01)); err != nil {
		t.Fatalf("merge empty: %v", err)
	}
	after := s.State()
	if after.N != before.N || after.Sum != before.Sum || after.Min != before.Min || after.Max != before.Max {
		t.Fatalf("merging an empty sketch changed state: %+v vs %+v", after, before)
	}

	empty := NewSketch(0.01)
	if err := empty.Merge(s); err != nil {
		t.Fatalf("merge into empty: %v", err)
	}
	if empty.N() != s.N() || empty.Min() != s.Min() || empty.Max() != s.Max() {
		t.Fatalf("empty.Merge(s) = n/min/max %d/%v/%v, want %d/%v/%v",
			empty.N(), empty.Min(), empty.Max(), s.N(), s.Min(), s.Max())
	}
	if got := empty.Quantile(0); got != 0.5 {
		t.Errorf("q=0 after merge = %v, want exact min 0.5", got)
	}
	if got := empty.Quantile(1); got != 3 {
		t.Errorf("q=1 after merge = %v, want exact max 3", got)
	}
}

// A mismatched-accuracy merge must fail with the typed sentinel so
// callers (MergeParts, a fleet controller) can branch on it.
func TestSketchMergeAccuracyMismatchTyped(t *testing.T) {
	a, b := NewSketch(0.01), NewSketch(0.02)
	b.Add(1)
	err := a.Merge(b)
	if err == nil {
		t.Fatal("mismatched-alpha merge returned nil")
	}
	if !errors.Is(err, ErrSketchAccuracyMismatch) {
		t.Fatalf("err = %v, want errors.Is(_, ErrSketchAccuracyMismatch)", err)
	}
	// Same accuracy never trips the sentinel, even through a wire round
	// trip (gamma is serialized verbatim, not recomputed from alpha).
	rt, rerr := SketchFromState(b.State())
	if rerr != nil {
		t.Fatalf("round trip: %v", rerr)
	}
	if err := b.Merge(rt); err != nil {
		t.Fatalf("same-gamma merge after round trip: %v", err)
	}
}

// State/SketchFromState must be an exact round trip, including through
// JSON — the wire format fleet cohort merges ride on.
func TestSketchStateRoundTrip(t *testing.T) {
	s := NewSketch(0.01)
	rng := sim.NewRNG(3)
	for i := 0; i < 5000; i++ {
		s.Add(rng.Exp(0.1))
	}
	s.Add(0)
	s.Add(-2) // zero-bucket clamp

	wire, err := json.Marshal(s.State())
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var st SketchState
	if err := json.Unmarshal(wire, &st); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	back, err := SketchFromState(st)
	if err != nil {
		t.Fatalf("from state: %v", err)
	}
	if back.N() != s.N() || back.Sum() != s.Sum() || back.Min() != s.Min() || back.Max() != s.Max() {
		t.Fatalf("round trip lost counters: n/sum/min/max %d/%v/%v/%v, want %d/%v/%v/%v",
			back.N(), back.Sum(), back.Min(), back.Max(), s.N(), s.Sum(), s.Min(), s.Max())
	}
	for _, q := range []float64{0, 0.01, 0.5, 0.99, 1} {
		if g, w := back.Quantile(q), s.Quantile(q); g != w {
			t.Errorf("q=%v: round trip %v != original %v", q, g, w)
		}
	}
}

// An empty sketch's state must serialize (its ±Inf min/max sentinels are
// not JSON-encodable, so State maps them to zeros) and reconstruct to a
// sketch that still tracks exact extremes from the first Add.
func TestSketchStateEmpty(t *testing.T) {
	st := NewSketch(0.01).State()
	if st.Min != 0 || st.Max != 0 || st.N != 0 {
		t.Fatalf("empty state = %+v, want zero min/max/n", st)
	}
	if _, err := json.Marshal(st); err != nil {
		t.Fatalf("empty state must be JSON-encodable: %v", err)
	}
	back, err := SketchFromState(st)
	if err != nil {
		t.Fatalf("from empty state: %v", err)
	}
	back.Add(7)
	if back.Min() != 7 || back.Max() != 7 {
		t.Fatalf("restored empty sketch lost its extreme sentinels: min/max %v/%v", back.Min(), back.Max())
	}
}

func TestSketchFromStateRejectsCorruptState(t *testing.T) {
	good := func() SketchState {
		s := NewSketch(0.01)
		s.Add(1)
		s.Add(2)
		return s.State()
	}
	cases := map[string]func(*SketchState){
		"gamma<=1":     func(st *SketchState) { st.Gamma = 1 },
		"gamma NaN":    func(st *SketchState) { st.Gamma = math.NaN() },
		"zero bin":     func(st *SketchState) { st.Bins[999] = 0 },
		"count drift":  func(st *SketchState) { st.N = 17 },
		"sum NaN":      func(st *SketchState) { st.Sum = math.NaN() },
		"min > max":    func(st *SketchState) { st.Min, st.Max = 5, 1 },
		"inf extremes": func(st *SketchState) { st.Min = math.Inf(-1) },
	}
	for name, corrupt := range cases {
		st := good()
		corrupt(&st)
		if _, err := SketchFromState(st); err == nil {
			t.Errorf("%s: SketchFromState accepted corrupt state %+v", name, st)
		}
	}
}
