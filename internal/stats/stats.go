// Package stats provides the small statistics toolkit the simulator and the
// experiment harness share: online moments, percentiles, histograms,
// exponentially weighted averages, and time-weighted averages of
// piecewise-constant signals.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Online accumulates count/mean/variance in one pass (Welford's method).
// The zero value is an empty accumulator ready to use.
type Online struct {
	n    int
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add folds x into the accumulator.
func (o *Online) Add(x float64) {
	o.n++
	if o.n == 1 {
		o.min, o.max = x, x
	} else {
		if x < o.min {
			o.min = x
		}
		if x > o.max {
			o.max = x
		}
	}
	delta := x - o.mean
	o.mean += delta / float64(o.n)
	o.m2 += delta * (x - o.mean)
}

// N returns the number of samples added.
func (o *Online) N() int { return o.n }

// Mean returns the sample mean (0 when empty).
func (o *Online) Mean() float64 { return o.mean }

// Min returns the smallest sample (0 when empty).
func (o *Online) Min() float64 { return o.min }

// Max returns the largest sample (0 when empty).
func (o *Online) Max() float64 { return o.max }

// Var returns the unbiased sample variance (0 with fewer than 2 samples).
func (o *Online) Var() float64 {
	if o.n < 2 {
		return 0
	}
	return o.m2 / float64(o.n-1)
}

// Std returns the unbiased sample standard deviation.
func (o *Online) Std() float64 { return math.Sqrt(o.Var()) }

// CI95 returns the half-width of a 95% confidence interval for the mean
// using the normal approximation (fine for the n ≥ 30 used in experiments).
func (o *Online) CI95() float64 {
	if o.n < 2 {
		return 0
	}
	return 1.96 * o.Std() / math.Sqrt(float64(o.n))
}

// Mean returns the arithmetic mean of xs (0 when empty).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Std returns the unbiased standard deviation of xs.
func Std(xs []float64) float64 {
	var o Online
	for _, x := range xs {
		o.Add(x)
	}
	return o.Std()
}

// sortedFinite copies xs without NaNs and sorts the copy. NaN samples must
// not participate in rank selection: sort.Float64s leaves NaNs in
// unspecified positions, so a single NaN would otherwise poison every
// percentile of the slice, not just one rank.
func sortedFinite(xs []float64) []float64 {
	sorted := make([]float64, 0, len(xs))
	for _, x := range xs {
		if !math.IsNaN(x) {
			sorted = append(sorted, x)
		}
	}
	sort.Float64s(sorted)
	return sorted
}

// Percentile returns the p-th percentile (p in [0, 100]) of xs using linear
// interpolation between closest ranks. It copies xs and returns 0 when
// empty. NaN samples are ignored; if every sample is NaN the result is NaN
// (explicit propagation, not silent rank corruption).
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := sortedFinite(xs)
	if len(sorted) == 0 {
		return math.NaN()
	}
	return percentileSorted(sorted, p)
}

// Percentiles returns several percentiles of xs with a single sort. NaN
// handling matches Percentile.
func Percentiles(xs []float64, ps ...float64) []float64 {
	out := make([]float64, len(ps))
	if len(xs) == 0 {
		return out
	}
	sorted := sortedFinite(xs)
	for i, p := range ps {
		if len(sorted) == 0 {
			out[i] = math.NaN()
			continue
		}
		out[i] = percentileSorted(sorted, p)
	}
	return out
}

func percentileSorted(sorted []float64, p float64) float64 {
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// EWMA is an exponentially weighted moving average with smoothing factor
// alpha in (0, 1]: larger alpha weights recent samples more.
type EWMA struct {
	alpha float64
	value float64
	init  bool
}

// NewEWMA returns an EWMA with the given smoothing factor, clamped into
// (0, 1].
func NewEWMA(alpha float64) *EWMA {
	if alpha <= 0 {
		alpha = 0.01
	}
	if alpha > 1 {
		alpha = 1
	}
	return &EWMA{alpha: alpha}
}

// Reinit rewinds the average to its just-constructed state with a new
// smoothing factor, clamped exactly as NewEWMA clamps. It exists so
// arena-reuse paths can recycle an EWMA without reallocating it.
func (e *EWMA) Reinit(alpha float64) {
	if alpha <= 0 {
		alpha = 0.01
	}
	if alpha > 1 {
		alpha = 1
	}
	*e = EWMA{alpha: alpha}
}

// Add folds a sample into the average. The first sample initializes it.
func (e *EWMA) Add(x float64) {
	if !e.init {
		e.value = x
		e.init = true
		return
	}
	e.value = e.alpha*x + (1-e.alpha)*e.value
}

// Value returns the current average (0 before any sample).
func (e *EWMA) Value() float64 { return e.value }

// Initialized reports whether at least one sample was added.
func (e *EWMA) Initialized() bool { return e.init }

// TimeWeighted averages a piecewise-constant signal over virtual time, e.g.
// CPU power or buffer level. Set the value at each change-point; the mean
// weights each value by how long it was held.
type TimeWeighted struct {
	lastT    float64
	lastV    float64
	started  bool
	weighted float64 // ∫ value dt
	elapsed  float64
	min, max float64
}

// Reset rewinds the accumulator to the zero value, forgetting the signal
// entirely; the next Set re-initializes it.
func (w *TimeWeighted) Reset() { *w = TimeWeighted{} }

// Set records that the signal takes value v from time t onward. Times must
// be nondecreasing.
func (w *TimeWeighted) Set(t, v float64) {
	if !w.started {
		w.started = true
		w.lastT, w.lastV = t, v
		w.min, w.max = v, v
		return
	}
	if t < w.lastT {
		t = w.lastT
	}
	dt := t - w.lastT
	w.weighted += w.lastV * dt
	w.elapsed += dt
	w.lastT, w.lastV = t, v
	if v < w.min {
		w.min = v
	}
	if v > w.max {
		w.max = v
	}
}

// Finish closes the signal at time t and returns the time-weighted mean.
// Further Sets continue from t.
func (w *TimeWeighted) Finish(t float64) float64 {
	w.Set(t, w.lastV)
	return w.Mean()
}

// Mean returns the time-weighted mean over the observed span (0 if no time
// has elapsed).
func (w *TimeWeighted) Mean() float64 {
	if w.elapsed == 0 {
		return 0
	}
	return w.weighted / w.elapsed
}

// Integral returns ∫ value dt over the observed span.
func (w *TimeWeighted) Integral() float64 { return w.weighted }

// Elapsed returns the total observed span.
func (w *TimeWeighted) Elapsed() float64 { return w.elapsed }

// Min returns the smallest value set (0 before any Set).
func (w *TimeWeighted) Min() float64 { return w.min }

// Max returns the largest value set (0 before any Set).
func (w *TimeWeighted) Max() float64 { return w.max }

// Histogram counts samples in equal-width bins over [lo, hi); samples
// outside the range land in the edge bins but are also tallied as
// under/over so range misconfiguration is visible. NaN samples are counted
// separately and excluded from the bins entirely.
type Histogram struct {
	lo, hi float64
	bins   []int
	n      int
	under  int
	over   int
	nans   int
}

// NewHistogram returns a histogram with nbins equal-width bins spanning
// [lo, hi). nbins must be positive and hi > lo.
func NewHistogram(lo, hi float64, nbins int) (*Histogram, error) {
	if nbins <= 0 {
		return nil, fmt.Errorf("histogram: nbins %d must be positive", nbins)
	}
	if hi <= lo {
		return nil, fmt.Errorf("histogram: hi %v must exceed lo %v", hi, lo)
	}
	return &Histogram{lo: lo, hi: hi, bins: make([]int, nbins)}, nil
}

// Add folds x into the histogram.
func (h *Histogram) Add(x float64) {
	if math.IsNaN(x) {
		h.nans++
		return
	}
	// Pick the bin by value comparison first and only convert in-range
	// samples: for ±Inf (and any float beyond int range) the float→int
	// conversion result is implementation-specific per the Go spec, so an
	// Inf sample must never reach it.
	var i int
	switch {
	case x < h.lo:
		h.under++
		i = 0
	case x >= h.hi:
		h.over++
		i = len(h.bins) - 1
	default:
		i = int((x - h.lo) / (h.hi - h.lo) * float64(len(h.bins)))
		if i >= len(h.bins) {
			// Guard float rounding at the top edge (x just below hi can
			// still scale to nbins).
			i = len(h.bins) - 1
		}
	}
	h.bins[i]++
	h.n++
}

// N returns the number of samples binned (NaNs excluded).
func (h *Histogram) N() int { return h.n }

// Under returns how many samples fell below lo (clamped into bin 0).
func (h *Histogram) Under() int { return h.under }

// Over returns how many samples fell at or above hi (clamped into the last
// bin).
func (h *Histogram) Over() int { return h.over }

// NaNs returns how many NaN samples were rejected.
func (h *Histogram) NaNs() int { return h.nans }

// Counts returns a copy of the per-bin counts.
func (h *Histogram) Counts() []int {
	out := make([]int, len(h.bins))
	copy(out, h.bins)
	return out
}

// Fractions returns each bin's share of the samples (zeros when empty).
func (h *Histogram) Fractions() []float64 {
	out := make([]float64, len(h.bins))
	if h.n == 0 {
		return out
	}
	for i, c := range h.bins {
		out[i] = float64(c) / float64(h.n)
	}
	return out
}

// BinCenter returns the midpoint of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	width := (h.hi - h.lo) / float64(len(h.bins))
	return h.lo + width*(float64(i)+0.5)
}
