package stats

import (
	"math"
	"testing"

	"videodvfs/internal/sim"
)

// The sketch's whole contract: every quantile estimate is within alpha
// relative error of the exact empirical quantile.
func TestSketchRelativeAccuracy(t *testing.T) {
	const alpha = 0.01
	s := NewSketch(alpha)
	rng := sim.NewRNG(42)
	values := make([]float64, 0, 20000)
	for i := 0; i < 20000; i++ {
		// A heavy-ish mix: exponential bulk plus a uniform tail, spanning
		// several orders of magnitude like per-viewer joule totals do.
		v := rng.Exp(1.0/30) + rng.Uniform(0, 5)
		values = append(values, v)
		s.Add(v)
	}
	for _, q := range []float64{0, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1} {
		got := s.Quantile(q)
		want := Percentile(values, 100*q)
		if math.Abs(got-want) > alpha*want+1e-9 {
			t.Errorf("q=%.2f: sketch %v, exact %v (rel err %.4f > %v)",
				q, got, want, math.Abs(got-want)/want, alpha)
		}
	}
	if s.N() != len(values) {
		t.Errorf("N = %d, want %d", s.N(), len(values))
	}
}

// Merging per-shard sketches must be exactly equivalent to one sketch
// having seen the whole stream — the property cohort determinism across
// worker counts rests on.
func TestSketchMergeEquivalence(t *testing.T) {
	whole := NewSketch(0.01)
	shards := []*Sketch{NewSketch(0.01), NewSketch(0.01), NewSketch(0.01)}
	rng := sim.NewRNG(7)
	for i := 0; i < 9999; i++ {
		v := rng.Exp(0.2)
		whole.Add(v)
		shards[i%3].Add(v)
	}
	merged := NewSketch(0.01)
	for _, sh := range shards {
		if err := merged.Merge(sh); err != nil {
			t.Fatal(err)
		}
	}
	if merged.N() != whole.N() || merged.Min() != whole.Min() || merged.Max() != whole.Max() {
		t.Fatalf("merged n/min/max %d/%v/%v, whole %d/%v/%v",
			merged.N(), merged.Min(), merged.Max(), whole.N(), whole.Min(), whole.Max())
	}
	for _, q := range []float64{0, 0.1, 0.5, 0.9, 0.999, 1} {
		if m, w := merged.Quantile(q), whole.Quantile(q); m != w {
			t.Errorf("q=%v: merged %v != whole %v (merge must be exact)", q, m, w)
		}
	}
}

func TestSketchEdgeCases(t *testing.T) {
	s := NewSketch(0.01)
	if s.Quantile(0.5) != 0 || s.N() != 0 || s.Mean() != 0 {
		t.Error("empty sketch must read as zeros")
	}
	s.Add(math.NaN())
	s.Add(math.Inf(1))
	if s.N() != 0 {
		t.Errorf("non-finite values counted: N = %d", s.N())
	}
	s.Add(0)
	s.Add(-3) // clamps to the zero bucket
	s.Add(10)
	if got := s.Quantile(0); got != -3 {
		t.Errorf("q=0 = %v, want exact min -3", got)
	}
	if got := s.Quantile(1); got != 10 {
		t.Errorf("q=1 = %v, want exact max 10", got)
	}
	if got := s.Quantile(0.5); got != 0 {
		t.Errorf("median = %v, want 0 (two of three in the zero bucket)", got)
	}

	other := NewSketch(0.5)
	other.Add(1)
	if err := s.Merge(other); err == nil {
		t.Error("merging mismatched-accuracy sketches must error")
	}
	if err := s.Merge(nil); err != nil {
		t.Errorf("nil merge: %v", err)
	}

	s.Reset()
	if s.N() != 0 || s.Quantile(0.5) != 0 {
		t.Error("Reset did not empty the sketch")
	}
}
