package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestOnlineMomentsMatchClosedForm(t *testing.T) {
	var o Online
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	for _, x := range xs {
		o.Add(x)
	}
	if o.N() != 8 {
		t.Fatalf("N = %d", o.N())
	}
	if !almost(o.Mean(), 5, 1e-12) {
		t.Fatalf("Mean = %v, want 5", o.Mean())
	}
	// Population variance of this classic set is 4; unbiased = 32/7.
	if !almost(o.Var(), 32.0/7.0, 1e-12) {
		t.Fatalf("Var = %v, want %v", o.Var(), 32.0/7.0)
	}
	if o.Min() != 2 || o.Max() != 9 {
		t.Fatalf("Min/Max = %v/%v", o.Min(), o.Max())
	}
}

func TestOnlineEmptyAndSingle(t *testing.T) {
	var o Online
	if o.Mean() != 0 || o.Var() != 0 || o.CI95() != 0 {
		t.Fatal("empty accumulator should report zeros")
	}
	o.Add(3)
	if o.Mean() != 3 || o.Var() != 0 {
		t.Fatalf("single sample: mean=%v var=%v", o.Mean(), o.Var())
	}
}

func TestOnlineMatchesBatchProperty(t *testing.T) {
	f := func(raw []int16) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		var o Online
		for i, r := range raw {
			xs[i] = float64(r)
			o.Add(xs[i])
		}
		return almost(o.Mean(), Mean(xs), 1e-6) && almost(o.Std(), Std(xs), 1e-6)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPercentileInterpolation(t *testing.T) {
	xs := []float64{10, 20, 30, 40}
	cases := []struct{ p, want float64 }{
		{0, 10}, {100, 40}, {50, 25}, {25, 17.5}, {-5, 10}, {200, 40},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); !almost(got, c.want, 1e-12) {
			t.Errorf("P%v = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestPercentileDoesNotMutateInput(t *testing.T) {
	xs := []float64{3, 1, 2}
	Percentile(xs, 50)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatalf("input mutated: %v", xs)
	}
}

func TestPercentilesBatchAgreesWithSingle(t *testing.T) {
	xs := []float64{5, 1, 9, 3, 7, 2, 8}
	got := Percentiles(xs, 10, 50, 90)
	for i, p := range []float64{10, 50, 90} {
		if !almost(got[i], Percentile(xs, p), 1e-12) {
			t.Fatalf("Percentiles disagrees at P%v", p)
		}
	}
}

func TestPercentileEmpty(t *testing.T) {
	if Percentile(nil, 50) != 0 {
		t.Fatal("empty percentile should be 0")
	}
}

func TestEWMAConverges(t *testing.T) {
	e := NewEWMA(0.5)
	if e.Initialized() {
		t.Fatal("fresh EWMA claims initialized")
	}
	e.Add(10)
	if e.Value() != 10 {
		t.Fatalf("first sample should initialize: %v", e.Value())
	}
	for i := 0; i < 50; i++ {
		e.Add(20)
	}
	if !almost(e.Value(), 20, 1e-6) {
		t.Fatalf("EWMA did not converge: %v", e.Value())
	}
}

func TestEWMAAlphaClamping(t *testing.T) {
	for _, alpha := range []float64{-1, 0, 2} {
		e := NewEWMA(alpha)
		e.Add(1)
		e.Add(3)
		v := e.Value()
		if v < 1 || v > 3 {
			t.Fatalf("alpha %v: value %v out of sample range", alpha, v)
		}
	}
}

func TestTimeWeightedMean(t *testing.T) {
	var w TimeWeighted
	w.Set(0, 100) // 100 for 2s
	w.Set(2, 50)  // 50 for 8s
	got := w.Finish(10)
	want := (100*2 + 50*8) / 10.0
	if !almost(got, want, 1e-12) {
		t.Fatalf("mean = %v, want %v", got, want)
	}
	if !almost(w.Integral(), 600, 1e-12) {
		t.Fatalf("integral = %v, want 600", w.Integral())
	}
	if w.Min() != 50 || w.Max() != 100 {
		t.Fatalf("min/max = %v/%v", w.Min(), w.Max())
	}
}

func TestTimeWeightedZeroSpan(t *testing.T) {
	var w TimeWeighted
	if w.Mean() != 0 {
		t.Fatal("empty mean should be 0")
	}
	w.Set(5, 42)
	if got := w.Finish(5); got != 0 {
		t.Fatalf("zero-span mean = %v, want 0", got)
	}
}

func TestTimeWeightedNonMonotonicClamped(t *testing.T) {
	var w TimeWeighted
	w.Set(0, 10)
	w.Set(2, 20)
	w.Set(1, 30) // goes backward: treated as t=2
	got := w.Finish(4)
	want := (10*2 + 30*2) / 4.0
	if !almost(got, want, 1e-12) {
		t.Fatalf("mean = %v, want %v", got, want)
	}
}

func TestHistogramBinning(t *testing.T) {
	h, err := NewHistogram(0, 10, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range []float64{0, 1.9, 2, 5, 9.9, -4, 12} {
		h.Add(x)
	}
	counts := h.Counts()
	// bins: [0,2) [2,4) [4,6) [6,8) [8,10); -4→bin0, 12→bin4.
	want := []int{3, 1, 1, 0, 2}
	for i := range want {
		if counts[i] != want[i] {
			t.Fatalf("counts = %v, want %v", counts, want)
		}
	}
	if h.N() != 7 {
		t.Fatalf("N = %d", h.N())
	}
}

func TestHistogramFractionsSumToOne(t *testing.T) {
	h, err := NewHistogram(0, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		h.Add(float64(i) / 100)
	}
	var sum float64
	for _, f := range h.Fractions() {
		sum += f
	}
	if !almost(sum, 1, 1e-12) {
		t.Fatalf("fractions sum = %v", sum)
	}
}

func TestHistogramInvalidConfig(t *testing.T) {
	if _, err := NewHistogram(0, 10, 0); err == nil {
		t.Fatal("want error for zero bins")
	}
	if _, err := NewHistogram(5, 5, 3); err == nil {
		t.Fatal("want error for hi == lo")
	}
}

func TestHistogramBinCenter(t *testing.T) {
	h, err := NewHistogram(0, 10, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(h.BinCenter(0), 1, 1e-12) || !almost(h.BinCenter(4), 9, 1e-12) {
		t.Fatalf("bin centers wrong: %v %v", h.BinCenter(0), h.BinCenter(4))
	}
}

// Property: percentile output is always within [min, max] of the sample.
func TestPercentileBoundsProperty(t *testing.T) {
	f := func(raw []int8, praw uint8) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		lo, hi := math.Inf(1), math.Inf(-1)
		for i, r := range raw {
			xs[i] = float64(r)
			lo = math.Min(lo, xs[i])
			hi = math.Max(hi, xs[i])
		}
		p := float64(praw) / 255 * 100
		got := Percentile(xs, p)
		return got >= lo-1e-9 && got <= hi+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPercentileIgnoresNaN(t *testing.T) {
	finite := []float64{1, 2, 3, 4, 5}
	withNaN := []float64{math.NaN(), 1, 2, math.NaN(), 3, 4, 5, math.NaN()}
	for _, p := range []float64{0, 25, 50, 90, 100} {
		want := Percentile(finite, p)
		got := Percentile(withNaN, p)
		if got != want {
			t.Errorf("p%.0f: NaN-laced slice gave %v, finite subset gives %v", p, got, want)
		}
	}
}

func TestPercentileAllNaNPropagates(t *testing.T) {
	xs := []float64{math.NaN(), math.NaN()}
	if got := Percentile(xs, 50); !math.IsNaN(got) {
		t.Errorf("all-NaN input: got %v, want NaN", got)
	}
	for _, v := range Percentiles(xs, 10, 50, 99) {
		if !math.IsNaN(v) {
			t.Errorf("Percentiles all-NaN input: got %v, want NaN", v)
		}
	}
}

func TestPercentilesIgnoreNaN(t *testing.T) {
	withNaN := []float64{5, math.NaN(), 1, 3, 2, 4}
	got := Percentiles(withNaN, 0, 50, 100)
	want := []float64{1, 3, 5}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Percentiles[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestHistogramOutOfRangeCounters(t *testing.T) {
	h, err := NewHistogram(0, 10, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range []float64{-3, -0.1, 2, 5, 9.9, 10, 42, math.NaN()} {
		h.Add(x)
	}
	if got := h.Under(); got != 2 {
		t.Errorf("Under() = %d, want 2", got)
	}
	if got := h.Over(); got != 2 {
		t.Errorf("Over() = %d, want 2", got)
	}
	if got := h.NaNs(); got != 1 {
		t.Errorf("NaNs() = %d, want 1", got)
	}
	if got := h.N(); got != 7 {
		t.Errorf("N() = %d, want 7 (NaN excluded)", got)
	}
	// Clamping semantics unchanged: out-of-range samples still land in
	// the edge bins.
	counts := h.Counts()
	if counts[0] != 2 {
		t.Errorf("bin 0 = %d, want 2 (underflow clamped)", counts[0])
	}
	if counts[4] != 3 {
		t.Errorf("last bin = %d, want 3 (9.9 plus two overflows)", counts[4])
	}
}

func TestHistogramNaNDoesNotTouchBins(t *testing.T) {
	h, err := NewHistogram(0, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	h.Add(math.NaN())
	for i, c := range h.Counts() {
		if c != 0 {
			t.Errorf("bin %d = %d after NaN-only input, want 0", i, c)
		}
	}
	if h.N() != 0 {
		t.Errorf("N() = %d after NaN-only input, want 0", h.N())
	}
}

// TestHistogramInfSamples pins the ±Inf handling: non-finite samples are
// tallied as under/over and land in the edge bins by value comparison —
// they must never reach the float→int bin conversion, whose result for
// out-of-range floats is implementation-specific per the Go spec.
func TestHistogramInfSamples(t *testing.T) {
	h, err := NewHistogram(0, 10, 4)
	if err != nil {
		t.Fatal(err)
	}
	h.Add(math.Inf(1))
	h.Add(math.Inf(-1))
	h.Add(5)
	if h.N() != 3 {
		t.Fatalf("N = %d, want 3", h.N())
	}
	if h.Under() != 1 || h.Over() != 1 {
		t.Fatalf("under/over = %d/%d, want 1/1", h.Under(), h.Over())
	}
	counts := h.Counts()
	if counts[0] != 1 || counts[len(counts)-1] != 1 || counts[2] != 1 {
		t.Fatalf("counts = %v, want -Inf in bin 0, +Inf in last bin, 5 in bin 2", counts)
	}
	if got := 0 + counts[0] + counts[1] + counts[2] + counts[3]; got != h.N() {
		t.Fatalf("bins sum to %d, N = %d", got, h.N())
	}
}

// TestHistogramAddTotalConservation: every non-NaN sample lands in
// exactly one bin, whatever its value.
func TestHistogramAddTotalConservation(t *testing.T) {
	h, _ := NewHistogram(-1, 1, 7)
	f := func(xs []float64) bool {
		before := 0
		for _, c := range h.Counts() {
			before += c
		}
		n := 0
		for _, x := range xs {
			h.Add(x)
			if !math.IsNaN(x) {
				n++
			}
		}
		after := 0
		for _, c := range h.Counts() {
			after += c
		}
		return after-before == n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
