package stats

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// ErrSketchAccuracyMismatch reports a Merge between sketches built with
// different relative accuracies (different gamma): their bins are not
// compatible, and folding one into the other would silently corrupt every
// later quantile. Distinguish it with errors.Is.
var ErrSketchAccuracyMismatch = errors.New("stats: sketch accuracy (alpha) mismatch")

// Sketch is a mergeable streaming quantile sketch over non-negative
// observations, in the DDSketch family: values map to logarithmic bins
// sized so every quantile estimate carries a bounded RELATIVE error
// alpha, regardless of how many observations were folded in. A cohort of
// a million viewers aggregates energy/QoE distributions through Sketches
// instead of per-viewer samples: memory is O(bins), not O(viewers), and
// per-shard sketches merge into the cohort total without re-reading any
// observation.
//
// Determinism: bins hold integer counts, so Merge is commutative and
// associative — merging per-shard sketches in any fixed order yields
// byte-identical quantiles regardless of how many workers filled them.
// (Sum is a float64 and is NOT order-free; cohort aggregation merges
// shards in index order for that reason.)
//
// The zero value is not ready to use; construct with NewSketch. A Sketch
// is not safe for concurrent use.
type Sketch struct {
	gamma   float64 // bin ratio: (1+alpha)/(1-alpha)
	invLogG float64 // 1/ln(gamma), hoisted out of Add
	bins    map[int]uint64
	zero    uint64 // observations in [0, minIndexable]
	n       uint64
	sum     float64
	min     float64
	max     float64
}

// minIndexable guards the log: observations at or below it land in the
// zero bucket. Every tracked metric (joules, seconds, ratios) is far
// above it when meaningfully non-zero.
const minIndexable = 1e-12

// NewSketch returns a sketch with relative accuracy alpha (quantile
// estimates are within a factor [1-alpha, 1+alpha] of an exact value in
// the stream). alpha outside (0, 1) selects the default 0.01 — 1%
// relative error, ~1400 bins over the full float64 range, a few KB in
// practice.
func NewSketch(alpha float64) *Sketch {
	if !(alpha > 0 && alpha < 1) {
		alpha = 0.01
	}
	gamma := (1 + alpha) / (1 - alpha)
	return &Sketch{
		gamma:   gamma,
		invLogG: 1 / math.Log(gamma),
		bins:    make(map[int]uint64),
		min:     math.Inf(1),
		max:     math.Inf(-1),
	}
}

// Reset empties the sketch in place, keeping its bin map's capacity.
func (s *Sketch) Reset() {
	for k := range s.bins {
		delete(s.bins, k)
	}
	s.zero, s.n, s.sum = 0, 0, 0
	s.min, s.max = math.Inf(1), math.Inf(-1)
}

// Add folds one observation in. Negative values clamp to the zero bucket
// (the tracked metrics are non-negative by construction; a tiny negative
// from float cancellation must not poison the log). Non-finite values
// are dropped — the simulator's invariant layer already rejects them at
// the source, and a NaN here would silently corrupt every later rank.
func (s *Sketch) Add(x float64) {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		return
	}
	s.n++
	s.sum += x
	if x < s.min {
		s.min = x
	}
	if x > s.max {
		s.max = x
	}
	if x <= minIndexable {
		s.zero++
		return
	}
	s.bins[int(math.Ceil(math.Log(x)*s.invLogG))]++
}

// N returns the number of observations folded in.
func (s *Sketch) N() int { return int(s.n) }

// Sum returns the running sum of observations.
func (s *Sketch) Sum() float64 { return s.sum }

// Mean returns the exact mean (sum/n), or 0 when empty.
func (s *Sketch) Mean() float64 {
	if s.n == 0 {
		return 0
	}
	return s.sum / float64(s.n)
}

// Min returns the exact minimum observation, or 0 when empty.
func (s *Sketch) Min() float64 {
	if s.n == 0 {
		return 0
	}
	return s.min
}

// Max returns the exact maximum observation, or 0 when empty.
func (s *Sketch) Max() float64 {
	if s.n == 0 {
		return 0
	}
	return s.max
}

// Quantile returns an estimate of the q-quantile (q in [0, 1], clamped)
// with the sketch's relative-error guarantee, or 0 when empty. Estimates
// are clamped to the exact observed [min, max].
func (s *Sketch) Quantile(q float64) float64 {
	if s.n == 0 {
		return 0
	}
	if q < 0 || math.IsNaN(q) {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	// The extremes are tracked exactly; return them rather than a bin
	// midpoint (q=0 would otherwise report the zero bucket as 0 even when
	// the true minimum is negative-clamped or sub-indexable).
	if q == 0 {
		return s.min
	}
	if q == 1 {
		return s.max
	}
	// The rank walk needs bins in value order; map iteration order is
	// random, so sort the keys. Quantile reads are per-rollup (O(100)
	// per cohort), not per-observation — the sort is off the hot path.
	keys := make([]int, 0, len(s.bins))
	for k := range s.bins {
		keys = append(keys, k)
	}
	sort.Ints(keys)

	rank := uint64(math.Ceil(q * float64(s.n)))
	if rank == 0 {
		rank = 1
	}
	var seen uint64
	est := 0.0
	if s.zero >= rank {
		est = 0
	} else {
		seen = s.zero
		for _, k := range keys {
			seen += s.bins[k]
			if seen >= rank {
				// Midpoint of the bin (gamma^(k-1), gamma^k]: the
				// canonical DDSketch point estimate with relative error
				// ≤ alpha.
				est = 2 * math.Pow(s.gamma, float64(k)) / (s.gamma + 1)
				break
			}
		}
	}
	if est < s.min {
		est = s.min
	}
	if est > s.max {
		est = s.max
	}
	return est
}

// Merge folds other into s. Both sketches must share an accuracy (same
// gamma); merging is exact — the result is bin-for-bin identical to one
// sketch having seen both streams, in any interleaving. other is left
// unchanged. A nil or empty other is a no-op.
func (s *Sketch) Merge(other *Sketch) error {
	if other == nil || other.n == 0 {
		return nil
	}
	if other.gamma != s.gamma {
		return fmt.Errorf("%w: gamma %v vs %v", ErrSketchAccuracyMismatch, s.gamma, other.gamma)
	}
	for k, c := range other.bins {
		s.bins[k] += c
	}
	s.zero += other.zero
	s.n += other.n
	s.sum += other.sum
	if other.min < s.min {
		s.min = other.min
	}
	if other.max > s.max {
		s.max = other.max
	}
	return nil
}

// SketchState is a Sketch's complete serializable state, the wire form a
// distributed tier ships per-shard sketches in. Gamma is carried verbatim
// (not alpha) so a reconstructed sketch is bit-identical to the original:
// re-deriving gamma from a rounded alpha could flip its last bit and make
// exact same-accuracy Merges fail. Bin counts are integers and the float
// fields round-trip exactly through JSON (shortest-form encoding), so
// State → SketchFromState → Merge reproduces a local merge bit for bit.
type SketchState struct {
	// Gamma is the bin ratio (1+alpha)/(1-alpha).
	Gamma float64 `json:"gamma"`
	// Bins maps bin index to observation count.
	Bins map[int]uint64 `json:"bins,omitempty"`
	// Zero counts observations in the zero bucket [0, 1e-12] (negative
	// values clamp here too).
	Zero uint64 `json:"zero,omitempty"`
	// N, Sum, Min, Max mirror the exact streaming aggregates. Min and Max
	// are omitted (and meaningless) when N is zero.
	N   uint64  `json:"n"`
	Sum float64 `json:"sum"`
	Min float64 `json:"min"`
	Max float64 `json:"max"`
}

// State snapshots the sketch for serialization. The bin map is copied;
// mutating the sketch afterwards does not alias the state. An empty
// sketch reports Min/Max as 0 (the internal ±Inf sentinels do not survive
// JSON); SketchFromState restores the sentinels from N == 0.
func (s *Sketch) State() SketchState {
	st := SketchState{Gamma: s.gamma, Zero: s.zero, N: s.n, Sum: s.sum}
	if len(s.bins) > 0 {
		st.Bins = make(map[int]uint64, len(s.bins))
		for k, c := range s.bins {
			st.Bins[k] = c
		}
	}
	if s.n > 0 {
		st.Min, st.Max = s.min, s.max
	}
	return st
}

// SketchFromState reconstructs a sketch from a (possibly untrusted) wire
// state. The state is validated — gamma must define a usable accuracy,
// counts must be internally consistent, and the float aggregates must be
// finite — so a corrupted or adversarial state fails loudly instead of
// poisoning a merge.
func SketchFromState(st SketchState) (*Sketch, error) {
	if !(st.Gamma > 1) || math.IsInf(st.Gamma, 0) {
		return nil, fmt.Errorf("stats: sketch state gamma %v not in (1, +Inf)", st.Gamma)
	}
	var binned uint64
	for k, c := range st.Bins {
		if c == 0 {
			return nil, fmt.Errorf("stats: sketch state bin %d has zero count", k)
		}
		binned += c
	}
	if st.Zero+binned != st.N {
		return nil, fmt.Errorf("stats: sketch state counts inconsistent: zero %d + binned %d != n %d",
			st.Zero, binned, st.N)
	}
	if math.IsNaN(st.Sum) || math.IsInf(st.Sum, 0) {
		return nil, fmt.Errorf("stats: sketch state sum %v not finite", st.Sum)
	}
	s := &Sketch{
		gamma:   st.Gamma,
		invLogG: 1 / math.Log(st.Gamma),
		bins:    make(map[int]uint64, len(st.Bins)),
		zero:    st.Zero,
		n:       st.N,
		sum:     st.Sum,
		min:     math.Inf(1),
		max:     math.Inf(-1),
	}
	for k, c := range st.Bins {
		s.bins[k] = c
	}
	if st.N > 0 {
		if math.IsNaN(st.Min) || math.IsInf(st.Min, 0) || math.IsNaN(st.Max) || math.IsInf(st.Max, 0) {
			return nil, fmt.Errorf("stats: sketch state min/max %v/%v not finite", st.Min, st.Max)
		}
		if st.Min > st.Max {
			return nil, fmt.Errorf("stats: sketch state min %v > max %v", st.Min, st.Max)
		}
		s.min, s.max = st.Min, st.Max
	}
	return s, nil
}
