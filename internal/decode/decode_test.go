package decode

import (
	"math"
	"testing"

	"videodvfs/internal/cpu"
	"videodvfs/internal/sim"
	"videodvfs/internal/video"
)

func testCore(t *testing.T) (*sim.Engine, *cpu.Core) {
	t.Helper()
	eng := sim.NewEngine()
	core, err := cpu.NewCore(eng, cpu.Model{
		Name:              "test",
		OPPs:              []cpu.OPP{{FreqHz: 1e9, VoltageV: 1, ActiveW: 1, IdleW: 0.1}},
		TransitionLatency: 0,
	})
	if err != nil {
		t.Fatal(err)
	}
	return eng, core
}

func frame(idx int, cycles float64) video.Frame {
	return video.Frame{Index: idx, Type: video.FrameP, PTS: sim.Time(float64(idx) / 30), Cycles: cycles}
}

func fixedDeadline(f video.Frame) sim.Time { return f.PTS + sim.Second }

type recordingHooks struct {
	starts, ends int
	idles        int
	lastDeadline sim.Time
	lastCycles   float64
	lastReady    int
	lastCap      int
}

func (h *recordingHooks) DecodeStart(_ sim.Time, _ video.Frame, deadline sim.Time, ready, queueCap int) {
	h.starts++
	h.lastDeadline = deadline
	h.lastReady = ready
	h.lastCap = queueCap
}

func (h *recordingHooks) DecodeEnd(_ sim.Time, _ video.Frame, _ sim.Time, cycles float64) {
	h.ends++
	h.lastCycles = cycles
}

func (h *recordingHooks) DecoderIdle(sim.Time) { h.idles++ }

func TestDecoderDecodesInOrder(t *testing.T) {
	eng, core := testCore(t)
	var got []int
	d, err := New(eng, core, 8, fixedDeadline, nil)
	if err != nil {
		t.Fatal(err)
	}
	d.OnReady(func(f video.Frame) { got = append(got, f.Index) })
	for i := 0; i < 5; i++ {
		d.Push(frame(i, 1e6))
	}
	eng.Run()
	if len(got) != 5 {
		t.Fatalf("decoded %d frames", len(got))
	}
	for i, idx := range got {
		if idx != i {
			t.Fatalf("order = %v", got)
		}
	}
	if c := d.Counts(); c.Decoded != 5 || c.Discarded != 0 || c.Skipped != 0 {
		t.Fatalf("counts = %+v", c)
	}
}

func TestDecoderRespectsQueueCap(t *testing.T) {
	eng, core := testCore(t)
	d, err := New(eng, core, 2, fixedDeadline, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		d.Push(frame(i, 1e6))
	}
	eng.Run()
	if d.ReadyLen() != 2 {
		t.Fatalf("ready = %d, want cap 2", d.ReadyLen())
	}
	if d.PendingLen() != 4 {
		t.Fatalf("pending = %d, want 4", d.PendingLen())
	}
	// Popping should let the decoder resume.
	if _, ok := d.Pop(0); !ok {
		t.Fatal("Pop(0) failed")
	}
	eng.Run()
	if d.ReadyLen() != 2 || d.PendingLen() != 3 {
		t.Fatalf("after pop: ready=%d pending=%d", d.ReadyLen(), d.PendingLen())
	}
}

func TestDecoderPopSemantics(t *testing.T) {
	eng, core := testCore(t)
	d, err := New(eng, core, 4, fixedDeadline, nil)
	if err != nil {
		t.Fatal(err)
	}
	d.Push(frame(0, 1e6))
	d.Push(frame(1, 1e6))
	eng.Run()
	if _, ok := d.Pop(1); ok {
		t.Fatal("Pop(1) should fail while 0 heads the queue")
	}
	if !d.Ready(0) {
		t.Fatal("frame 0 should be ready")
	}
	f, ok := d.Pop(0)
	if !ok || f.Index != 0 {
		t.Fatalf("Pop(0) = %v %v", f, ok)
	}
	if _, ok := d.Pop(0); ok {
		t.Fatal("double pop should fail")
	}
}

func TestDecoderDiscardBelowDropsStaleReady(t *testing.T) {
	eng, core := testCore(t)
	d, err := New(eng, core, 8, fixedDeadline, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		d.Push(frame(i, 1e6))
	}
	eng.Run()
	d.DiscardBelow(2)
	if !d.Ready(2) {
		t.Fatal("frame 2 should head the queue after discard")
	}
	c := d.Counts()
	if c.Discarded != 2 {
		t.Fatalf("discarded = %d, want 2", c.Discarded)
	}
	// DiscardBelow with a lower index is a no-op.
	d.DiscardBelow(1)
	if !d.Ready(2) {
		t.Fatal("lower DiscardBelow must not disturb the queue")
	}
}

func TestDecoderSkipsStalePendingWithoutDecoding(t *testing.T) {
	eng, core := testCore(t)
	d, err := New(eng, core, 8, fixedDeadline, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Fill with one slow frame so the rest stay pending.
	d.Push(frame(0, 1e9)) // 1 s decode
	for i := 1; i < 5; i++ {
		d.Push(frame(i, 1e6))
	}
	eng.Schedule(100*sim.Millisecond, func() { d.DiscardBelow(4) })
	eng.Run()
	c := d.Counts()
	if c.Skipped != 3 {
		t.Fatalf("skipped = %d, want 3 (frames 1–3 never decoded)", c.Skipped)
	}
	if c.Discarded != 1 {
		t.Fatalf("discarded = %d, want 1 (in-flight frame 0)", c.Discarded)
	}
	if !d.Ready(4) {
		t.Fatal("frame 4 should be decoded and ready")
	}
}

func TestDecoderInFlightDiscard(t *testing.T) {
	eng, core := testCore(t)
	d, err := New(eng, core, 8, fixedDeadline, nil)
	if err != nil {
		t.Fatal(err)
	}
	ready := 0
	d.OnReady(func(video.Frame) { ready++ })
	d.Push(frame(0, 1e9))
	eng.Schedule(500*sim.Millisecond, func() { d.DiscardBelow(1) })
	eng.Run()
	if ready != 0 {
		t.Fatal("discarded in-flight frame must not reach the ready queue")
	}
	if c := d.Counts(); c.Decoded != 1 || c.Discarded != 1 {
		t.Fatalf("counts = %+v", c)
	}
}

func TestDecoderHooksFire(t *testing.T) {
	eng, core := testCore(t)
	h := &recordingHooks{}
	d, err := New(eng, core, 2, fixedDeadline, h)
	if err != nil {
		t.Fatal(err)
	}
	d.Push(frame(0, 2e6))
	eng.Run()
	if h.starts != 1 || h.ends != 1 {
		t.Fatalf("hooks: starts=%d ends=%d", h.starts, h.ends)
	}
	if h.lastCycles != 2e6 {
		t.Fatalf("measured cycles = %v", h.lastCycles)
	}
	if math.Abs(float64(h.lastDeadline-sim.Second)) > 1e-12 {
		t.Fatalf("deadline = %v, want 1s", h.lastDeadline)
	}
	if h.lastReady != 0 || h.lastCap != 2 {
		t.Fatalf("queue state = %d/%d, want 0/2", h.lastReady, h.lastCap)
	}
	if h.idles == 0 {
		t.Fatal("DecoderIdle never fired after draining")
	}
}

func TestDecoderDeadlineQueriedAtStart(t *testing.T) {
	eng, core := testCore(t)
	shift := sim.Time(0)
	deadlineOf := func(f video.Frame) sim.Time { return f.PTS + shift }
	h := &recordingHooks{}
	d, err := New(eng, core, 2, deadlineOf, h)
	if err != nil {
		t.Fatal(err)
	}
	d.Push(frame(0, 1e6))
	eng.Run()
	first := h.lastDeadline
	shift = 5 * sim.Second // timeline shifted by a stall
	d.Push(frame(1, 1e6))
	eng.Run()
	if h.lastDeadline-first < 4*sim.Second {
		t.Fatalf("deadline did not track the shift: %v then %v", first, h.lastDeadline)
	}
}

func TestDecoderConstructorValidation(t *testing.T) {
	eng, core := testCore(t)
	if _, err := New(eng, core, 0, fixedDeadline, nil); err == nil {
		t.Fatal("want error for zero capacity")
	}
	if _, err := New(eng, core, 4, nil, nil); err == nil {
		t.Fatal("want error for nil deadlineOf")
	}
}

func TestDecoderThroughputMatchesFrequency(t *testing.T) {
	eng, core := testCore(t)
	d, err := New(eng, core, 1000, fixedDeadline, nil)
	if err != nil {
		t.Fatal(err)
	}
	// 100 frames × 10 M cycles at 1 GHz = 1 s total decode time.
	for i := 0; i < 100; i++ {
		d.Push(frame(i, 10e6))
	}
	end := eng.Run()
	if math.Abs(float64(end-sim.Second)) > 1e-9 {
		t.Fatalf("drain time = %v, want 1s", end)
	}
	if d.Err() != nil {
		t.Fatal(d.Err())
	}
}
