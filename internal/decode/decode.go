// Package decode models the player's decode-ahead worker: it pulls coded
// frames in presentation order, runs each as a CPU job, and parks decoded
// frames in a bounded output queue ahead of the display. The bounded queue
// is the slack store the energy-aware DVFS policy exploits.
package decode

import (
	"fmt"

	"videodvfs/internal/cpu"
	"videodvfs/internal/sim"
	"videodvfs/internal/video"
)

// Hooks receives decoder lifecycle callbacks. The energy-aware governor
// implements this to observe demand and deadlines; all callbacks are
// optional-free (implementations may no-op).
//
// Governors must treat the frame's Cycles field as hidden (only the oracle
// reads it); measuredCycles in DecodeEnd is legitimate feedback, as a real
// integration derives it from thread CPU time × frequency.
type Hooks interface {
	// DecodeStart fires when a frame's decode job is issued, carrying the
	// frame's display deadline and the decoded-queue occupancy — the two
	// inputs of deadline- and slack-driven frequency selection.
	DecodeStart(now sim.Time, f video.Frame, deadline sim.Time, ready, queueCap int)
	// DecodeEnd fires when a frame finishes decoding.
	DecodeEnd(now sim.Time, f video.Frame, deadline sim.Time, measuredCycles float64)
	// DecoderIdle fires when the decoder has nothing runnable (input
	// empty or output queue full) — the race-to-idle opportunity.
	DecoderIdle(now sim.Time)
}

// Submitter runs CPU jobs — a single core or a big.LITTLE cluster router.
type Submitter interface {
	// Submit enqueues the job for execution.
	Submit(j *cpu.Job) error
}

// NopHooks is an embeddable no-op Hooks implementation.
type NopHooks struct{}

// DecodeStart implements Hooks.
func (NopHooks) DecodeStart(sim.Time, video.Frame, sim.Time, int, int) {}

// DecodeEnd implements Hooks.
func (NopHooks) DecodeEnd(sim.Time, video.Frame, sim.Time, float64) {}

// DecoderIdle implements Hooks.
func (NopHooks) DecoderIdle(sim.Time) {}

var _ Hooks = NopHooks{}

// Counts summarizes decoder work.
type Counts struct {
	// Decoded frames completed (including later-discarded ones).
	Decoded int
	// Discarded frames that finished decoding after their display slot
	// was already skipped (wasted work).
	Discarded int
	// Skipped frames dropped from the input before decoding because
	// their display slot had passed.
	Skipped int
}

// frameQueue is a FIFO of frames with a head cursor, so steady-state
// push/pop reuses one backing array instead of re-slicing capacity away.
type frameQueue struct {
	buf  []video.Frame
	head int
}

func (q *frameQueue) push(f video.Frame) { q.buf = append(q.buf, f) }
func (q *frameQueue) len() int           { return len(q.buf) - q.head }
func (q *frameQueue) front() video.Frame { return q.buf[q.head] }

func (q *frameQueue) pop() video.Frame {
	f := q.buf[q.head]
	q.head++
	if q.head == len(q.buf) {
		q.buf = q.buf[:0]
		q.head = 0
	} else if q.head >= 64 && q.head > len(q.buf)/2 {
		// Compact: slide the live window to the front so append reuses
		// the vacated capacity instead of growing the array forever.
		n := copy(q.buf, q.buf[q.head:])
		q.buf = q.buf[:n]
		q.head = 0
	}
	return f
}

// Decoder is the decode-ahead worker. It is driven entirely by the event
// loop: Push feeds it, the display pops from it.
type Decoder struct {
	eng  *sim.Engine
	core Submitter
	cap  int

	pending  frameQueue
	ready    frameQueue
	inFlight bool

	// In-flight frame state: at most one decode job runs at a time, so
	// fields plus the pre-bound doneFn replace a per-frame closure.
	curFrame    video.Frame
	curDeadline sim.Time
	doneFn      func(now sim.Time)
	pool        cpu.JobPool

	discardBelow int
	deadlineOf   func(f video.Frame) sim.Time
	hooks        Hooks
	onReady      func(f video.Frame)

	counts Counts
	subErr error
}

// New returns a decoder with the given decoded-frame queue capacity.
// deadlineOf must return the frame's current scheduled display time; it is
// consulted at decode start so stalls that shift the timeline are
// reflected. hooks may be nil.
func New(eng *sim.Engine, core Submitter, queueCap int, deadlineOf func(f video.Frame) sim.Time, hooks Hooks) (*Decoder, error) {
	if queueCap < 1 {
		return nil, fmt.Errorf("decode: queue capacity %d < 1", queueCap)
	}
	if deadlineOf == nil {
		return nil, fmt.Errorf("decode: deadlineOf is required")
	}
	if hooks == nil {
		hooks = NopHooks{}
	}
	d := &Decoder{eng: eng, core: core, cap: queueCap, deadlineOf: deadlineOf, hooks: hooks}
	d.ready.buf = make([]video.Frame, 0, queueCap+1)
	d.doneFn = d.jobDone
	return d, nil
}

// Reset rewinds the decoder to the state New would construct for
// (queueCap, hooks), keeping its allocations: both frame-queue backing
// arrays, the job pool, and the pre-bound completion callback survive, as
// do the deadlineOf function and the OnReady callback wired at
// construction (they belong to the owning player, which outlives the
// reset). The owning engine and submitter must be reset alongside; an
// in-flight decode job is simply forgotten here (its pooled CPU job is
// returned by the core's own reset).
func (d *Decoder) Reset(queueCap int, hooks Hooks) error {
	if queueCap < 1 {
		return fmt.Errorf("decode: queue capacity %d < 1", queueCap)
	}
	if hooks == nil {
		hooks = NopHooks{}
	}
	d.cap = queueCap
	d.hooks = hooks
	d.pending.buf = d.pending.buf[:0]
	d.pending.head = 0
	if cap(d.ready.buf) < queueCap+1 {
		d.ready.buf = make([]video.Frame, 0, queueCap+1)
	} else {
		d.ready.buf = d.ready.buf[:0]
	}
	d.ready.head = 0
	d.inFlight = false
	d.curFrame = video.Frame{}
	d.curDeadline = 0
	d.discardBelow = 0
	d.counts = Counts{}
	d.subErr = nil
	return nil
}

// OnReady registers a callback invoked when a frame lands in the decoded
// queue (the display uses it to wake from stalls).
func (d *Decoder) OnReady(fn func(f video.Frame)) { d.onReady = fn }

// Push appends a coded frame to the decode input in presentation order.
func (d *Decoder) Push(f video.Frame) {
	d.pending.push(f)
	d.maybeStart()
}

// ReadyLen returns the decoded-queue depth.
func (d *Decoder) ReadyLen() int { return d.ready.len() }

// PendingLen returns the coded input backlog.
func (d *Decoder) PendingLen() int { return d.pending.len() }

// InFlight reports whether a decode job is executing.
func (d *Decoder) InFlight() bool { return d.inFlight }

// Cap returns the decoded-queue capacity.
func (d *Decoder) Cap() int { return d.cap }

// Counts returns the work summary so far.
func (d *Decoder) Counts() Counts { return d.counts }

// Err returns the first CPU submission error, if any.
func (d *Decoder) Err() error { return d.subErr }

// Ready reports whether frame idx is at the head of the decoded queue.
func (d *Decoder) Ready(idx int) bool {
	return d.ready.len() > 0 && d.ready.front().Index == idx
}

// Pop removes and returns frame idx if it heads the decoded queue.
func (d *Decoder) Pop(idx int) (video.Frame, bool) {
	if !d.Ready(idx) {
		return video.Frame{}, false
	}
	f := d.ready.pop()
	d.maybeStart()
	return f, true
}

// DiscardBelow drops all frames with Index < idx: queued decoded frames
// are removed, pending frames are skipped before decoding, and an
// in-flight frame is discarded at completion. The display calls this when
// it skips late frames.
func (d *Decoder) DiscardBelow(idx int) {
	if idx <= d.discardBelow {
		return
	}
	d.discardBelow = idx
	w := 0
	for i := d.ready.head; i < len(d.ready.buf); i++ {
		f := d.ready.buf[i]
		if f.Index >= idx {
			d.ready.buf[w] = f
			w++
		} else {
			d.counts.Discarded++
		}
	}
	d.ready.buf = d.ready.buf[:w]
	d.ready.head = 0
	d.maybeStart()
}

func (d *Decoder) maybeStart() {
	if d.inFlight {
		return
	}
	// Skip input frames whose slot already passed.
	for d.pending.len() > 0 && d.pending.front().Index < d.discardBelow {
		d.pending.pop()
		d.counts.Skipped++
	}
	if d.pending.len() == 0 || d.ready.len() >= d.cap {
		d.hooks.DecoderIdle(d.eng.Now())
		return
	}
	f := d.pending.pop()
	d.inFlight = true
	d.curFrame = f
	d.curDeadline = d.deadlineOf(f)
	d.hooks.DecodeStart(d.eng.Now(), f, d.curDeadline, d.ready.len(), d.cap)
	j := d.pool.Get()
	j.Cycles = f.Cycles
	j.Priority = cpu.PrioDecode
	j.Tag = "decode"
	j.OnDone = d.doneFn
	if err := d.core.Submit(j); err != nil {
		d.inFlight = false
		if d.subErr == nil {
			d.subErr = err
		}
	}
}

// jobDone is the CPU completion callback for the single in-flight decode
// job issued by maybeStart.
func (d *Decoder) jobDone(now sim.Time) {
	f := d.curFrame
	d.inFlight = false
	d.counts.Decoded++
	d.hooks.DecodeEnd(now, f, d.curDeadline, f.Cycles)
	if f.Index < d.discardBelow {
		d.counts.Discarded++
	} else {
		d.ready.push(f)
		if d.onReady != nil {
			d.onReady(f)
		}
	}
	d.maybeStart()
}
