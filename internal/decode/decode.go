// Package decode models the player's decode-ahead worker: it pulls coded
// frames in presentation order, runs each as a CPU job, and parks decoded
// frames in a bounded output queue ahead of the display. The bounded queue
// is the slack store the energy-aware DVFS policy exploits.
package decode

import (
	"fmt"

	"videodvfs/internal/cpu"
	"videodvfs/internal/sim"
	"videodvfs/internal/video"
)

// Hooks receives decoder lifecycle callbacks. The energy-aware governor
// implements this to observe demand and deadlines; all callbacks are
// optional-free (implementations may no-op).
//
// Governors must treat the frame's Cycles field as hidden (only the oracle
// reads it); measuredCycles in DecodeEnd is legitimate feedback, as a real
// integration derives it from thread CPU time × frequency.
type Hooks interface {
	// DecodeStart fires when a frame's decode job is issued, carrying the
	// frame's display deadline and the decoded-queue occupancy — the two
	// inputs of deadline- and slack-driven frequency selection.
	DecodeStart(now sim.Time, f video.Frame, deadline sim.Time, ready, queueCap int)
	// DecodeEnd fires when a frame finishes decoding.
	DecodeEnd(now sim.Time, f video.Frame, deadline sim.Time, measuredCycles float64)
	// DecoderIdle fires when the decoder has nothing runnable (input
	// empty or output queue full) — the race-to-idle opportunity.
	DecoderIdle(now sim.Time)
}

// Submitter runs CPU jobs — a single core or a big.LITTLE cluster router.
type Submitter interface {
	// Submit enqueues the job for execution.
	Submit(j *cpu.Job) error
}

// NopHooks is an embeddable no-op Hooks implementation.
type NopHooks struct{}

// DecodeStart implements Hooks.
func (NopHooks) DecodeStart(sim.Time, video.Frame, sim.Time, int, int) {}

// DecodeEnd implements Hooks.
func (NopHooks) DecodeEnd(sim.Time, video.Frame, sim.Time, float64) {}

// DecoderIdle implements Hooks.
func (NopHooks) DecoderIdle(sim.Time) {}

var _ Hooks = NopHooks{}

// Counts summarizes decoder work.
type Counts struct {
	// Decoded frames completed (including later-discarded ones).
	Decoded int
	// Discarded frames that finished decoding after their display slot
	// was already skipped (wasted work).
	Discarded int
	// Skipped frames dropped from the input before decoding because
	// their display slot had passed.
	Skipped int
}

// Decoder is the decode-ahead worker. It is driven entirely by the event
// loop: Push feeds it, the display pops from it.
type Decoder struct {
	eng  *sim.Engine
	core Submitter
	cap  int

	pending  []video.Frame
	ready    []video.Frame
	inFlight bool

	discardBelow int
	deadlineOf   func(f video.Frame) sim.Time
	hooks        Hooks
	onReady      func(f video.Frame)

	counts Counts
	subErr error
}

// New returns a decoder with the given decoded-frame queue capacity.
// deadlineOf must return the frame's current scheduled display time; it is
// consulted at decode start so stalls that shift the timeline are
// reflected. hooks may be nil.
func New(eng *sim.Engine, core Submitter, queueCap int, deadlineOf func(f video.Frame) sim.Time, hooks Hooks) (*Decoder, error) {
	if queueCap < 1 {
		return nil, fmt.Errorf("decode: queue capacity %d < 1", queueCap)
	}
	if deadlineOf == nil {
		return nil, fmt.Errorf("decode: deadlineOf is required")
	}
	if hooks == nil {
		hooks = NopHooks{}
	}
	return &Decoder{eng: eng, core: core, cap: queueCap, deadlineOf: deadlineOf, hooks: hooks}, nil
}

// OnReady registers a callback invoked when a frame lands in the decoded
// queue (the display uses it to wake from stalls).
func (d *Decoder) OnReady(fn func(f video.Frame)) { d.onReady = fn }

// Push appends a coded frame to the decode input in presentation order.
func (d *Decoder) Push(f video.Frame) {
	d.pending = append(d.pending, f)
	d.maybeStart()
}

// ReadyLen returns the decoded-queue depth.
func (d *Decoder) ReadyLen() int { return len(d.ready) }

// PendingLen returns the coded input backlog.
func (d *Decoder) PendingLen() int { return len(d.pending) }

// InFlight reports whether a decode job is executing.
func (d *Decoder) InFlight() bool { return d.inFlight }

// Cap returns the decoded-queue capacity.
func (d *Decoder) Cap() int { return d.cap }

// Counts returns the work summary so far.
func (d *Decoder) Counts() Counts { return d.counts }

// Err returns the first CPU submission error, if any.
func (d *Decoder) Err() error { return d.subErr }

// Ready reports whether frame idx is at the head of the decoded queue.
func (d *Decoder) Ready(idx int) bool {
	return len(d.ready) > 0 && d.ready[0].Index == idx
}

// Pop removes and returns frame idx if it heads the decoded queue.
func (d *Decoder) Pop(idx int) (video.Frame, bool) {
	if !d.Ready(idx) {
		return video.Frame{}, false
	}
	f := d.ready[0]
	d.ready = d.ready[1:]
	d.maybeStart()
	return f, true
}

// DiscardBelow drops all frames with Index < idx: queued decoded frames
// are removed, pending frames are skipped before decoding, and an
// in-flight frame is discarded at completion. The display calls this when
// it skips late frames.
func (d *Decoder) DiscardBelow(idx int) {
	if idx <= d.discardBelow {
		return
	}
	d.discardBelow = idx
	kept := d.ready[:0]
	for _, f := range d.ready {
		if f.Index >= idx {
			kept = append(kept, f)
		} else {
			d.counts.Discarded++
		}
	}
	d.ready = kept
	d.maybeStart()
}

func (d *Decoder) maybeStart() {
	if d.inFlight {
		return
	}
	// Skip input frames whose slot already passed.
	for len(d.pending) > 0 && d.pending[0].Index < d.discardBelow {
		d.pending = d.pending[1:]
		d.counts.Skipped++
	}
	if len(d.pending) == 0 || len(d.ready) >= d.cap {
		d.hooks.DecoderIdle(d.eng.Now())
		return
	}
	f := d.pending[0]
	d.pending = d.pending[1:]
	d.inFlight = true
	deadline := d.deadlineOf(f)
	d.hooks.DecodeStart(d.eng.Now(), f, deadline, len(d.ready), d.cap)
	err := d.core.Submit(&cpu.Job{
		Cycles:   f.Cycles,
		Priority: cpu.PrioDecode,
		Tag:      "decode",
		OnDone: func(now sim.Time) {
			d.inFlight = false
			d.counts.Decoded++
			d.hooks.DecodeEnd(now, f, deadline, f.Cycles)
			if f.Index < d.discardBelow {
				d.counts.Discarded++
			} else {
				d.ready = append(d.ready, f)
				if d.onReady != nil {
					d.onReady(f)
				}
			}
			d.maybeStart()
		},
	})
	if err != nil {
		d.inFlight = false
		if d.subErr == nil {
			d.subErr = err
		}
	}
}
