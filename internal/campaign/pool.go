package campaign

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
)

// ErrPoolClosed reports a submission to a pool that is closed or
// draining; distinguish it with errors.Is.
var ErrPoolClosed = errors.New("campaign: pool closed")

// Pool is a long-lived worker pool with a bounded admission queue. Where
// Do spins workers up for one batch and tears them down, a Pool serves an
// open-ended stream of tasks — the execution substrate for a simulation
// service, where admission control (the bounded queue) and backpressure
// (TrySubmit returning false) are part of the contract.
//
// Tasks run under the same panic discipline as Do: a panicking task never
// kills its worker. Tasks that need the panic as a value wrap their body
// in Protect themselves.
// submission wraps a queued task so a sender that lost the close race can
// retract it after the send: the sender and the workers race for the
// claim with one CAS, so the task either runs exactly once or provably
// never runs.
type submission struct {
	task  func()
	state atomic.Int32 // subQueued until claimed or retracted
}

const (
	subQueued    int32 = iota // in the channel, up for grabs
	subClaimed                // a worker owns it and will run it
	subRetracted              // the sender withdrew it; workers skip it
)

type Pool struct {
	tasks   chan *submission
	closing chan struct{}
	wg      sync.WaitGroup // workers
	senders sync.WaitGroup // blocked SubmitCtx calls
	queued  atomic.Int64
	active  atomic.Int64
	done    atomic.Int64
	workers int

	mu     sync.Mutex
	closed bool

	// submitGate, when set (tests only), runs after a SubmitCtx call
	// registers as a sender and before it reaches the send — the window
	// where Close can slip in. It lets the race test hold that window
	// open deterministically instead of praying for a preemption.
	submitGate func()
}

// NewPool starts a pool of workers (≤0 = GOMAXPROCS) over a queue holding
// up to queue pending tasks (≤0 = 2×workers). Close it to drain.
func NewPool(workers, queue int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if queue <= 0 {
		queue = 2 * workers
	}
	p := &Pool{
		tasks:   make(chan *submission, queue),
		closing: make(chan struct{}),
		workers: workers,
	}
	p.wg.Add(workers)
	for w := 0; w < workers; w++ {
		go p.worker()
	}
	return p
}

func (p *Pool) worker() {
	defer p.wg.Done()
	for s := range p.tasks {
		if !s.state.CompareAndSwap(subQueued, subClaimed) {
			continue // retracted by a sender that lost the close race
		}
		p.queued.Add(-1)
		p.active.Add(1)
		p.run(s.task)
		p.active.Add(-1)
		p.done.Add(1)
	}
}

// run executes one task, swallowing panics so the worker survives. Tasks
// wanting the panic as data wrap themselves in Protect.
func (p *Pool) run(task func()) {
	defer func() { recover() }()
	task()
}

// TrySubmit enqueues task without blocking. It returns false when the
// queue is full or the pool is closed — the admission-control signal a
// server turns into 429/503.
func (p *Pool) TrySubmit(task func()) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return false
	}
	select {
	case p.tasks <- &submission{task: task}:
		p.queued.Add(1)
		return true
	default:
		return false
	}
}

// SubmitCtx enqueues task, blocking until queue space frees, ctx ends, or
// the pool closes. Use it for pre-admitted batch work (a sweep whose
// admission was decided once up front) that should ride out transient
// queue pressure instead of failing item by item.
func (p *Pool) SubmitCtx(ctx context.Context, task func()) error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return ErrPoolClosed
	}
	// Register as an in-flight sender while still holding the lock, so
	// Close cannot close p.tasks between the check above and the send.
	p.senders.Add(1)
	p.mu.Unlock()
	defer p.senders.Done()
	if p.submitGate != nil {
		p.submitGate()
	}
	s := &submission{task: task}
	select {
	case p.tasks <- s:
		p.queued.Add(1)
		// Go's select picks uniformly among ready cases, so a sender
		// blocked here can win the send even when Close already closed
		// p.closing — which would admit a task after "further
		// submissions fail" took effect. Re-check closing with priority
		// and retract the submission if Close got there first; the CAS
		// settles the race with any worker that grabbed it meanwhile.
		select {
		case <-p.closing:
			if s.state.CompareAndSwap(subQueued, subRetracted) {
				p.queued.Add(-1)
				return ErrPoolClosed
			}
			// A worker claimed it before Close's barrier: the task runs,
			// so the submission linearizes before the close.
			return nil
		default:
			return nil
		}
	case <-ctx.Done():
		return ctx.Err()
	case <-p.closing:
		return ErrPoolClosed
	}
}

// QueueDepth returns the number of tasks accepted but not yet started.
func (p *Pool) QueueDepth() int { return int(p.queued.Load()) }

// Active returns the number of tasks currently executing.
func (p *Pool) Active() int { return int(p.active.Load()) }

// Completed returns the number of tasks finished since the pool started.
func (p *Pool) Completed() int64 { return p.done.Load() }

// Workers returns the pool size.
func (p *Pool) Workers() int { return p.workers }

// Capacity returns the admission queue's size.
func (p *Pool) Capacity() int { return cap(p.tasks) }

// Close stops admission and blocks until every accepted task has run.
// Further submissions fail; Close is idempotent.
func (p *Pool) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		p.wg.Wait()
		return
	}
	p.closed = true
	close(p.closing) // unblocks pending SubmitCtx sends
	p.mu.Unlock()
	p.senders.Wait() // no sender can touch p.tasks after this
	close(p.tasks)
	p.wg.Wait()
}

// Protect runs fn, converting a panic into a *PanicError carrying the
// given index (position in a batch, request number — any identifier
// useful in the report). It is the panic discipline Do applies per job,
// exported so Pool tasks and other callers can opt into the same
// contract.
func Protect(index int, fn func() error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			stack := make([]byte, 16<<10)
			stack = stack[:runtime.Stack(stack, false)]
			err = &PanicError{Index: index, Value: r, Stack: stack}
		}
	}()
	return fn()
}
