// Package campaign fans a batch of independent, deterministic simulation
// jobs across a worker pool. Every table and figure of the evaluation is
// rebuilt from dozens of single-threaded sim.Engine runs; the engine is
// serial by design, so throughput comes from executing whole runs
// concurrently. The pool preserves input order in its results, converts
// per-job panics into per-job errors (one bad config must not kill a
// 1000-run sweep), and reports progress through a pluggable Observer.
//
// The package is deliberately generic: it knows nothing about
// experiments.RunConfig, so the experiments package (and anything else —
// cluster runs, cell simulations, whole table builders) can batch through
// it without an import cycle. The typed conveniences over RunConfig live
// in internal/experiments (RunAll, Sweep).
//
// Determinism contract: a job must derive all randomness from its own
// inputs and share no mutable state with other jobs. Under that contract
// Do returns bit-identical outcomes for any worker count, which the
// experiments package pins with a parallel-vs-serial equivalence test.
//
// Jobs built on experiments.Run additionally recycle whole simulation
// arenas from a pool (experiments.Session): each worker's runs rewind an
// existing simulator in place rather than constructing one, which is safe
// under the same contract — a recycled arena is differentially pinned to
// reproduce a fresh simulator's results exactly.
package campaign

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"videodvfs/internal/sim"
)

// Job computes one value. Jobs run concurrently and must not share
// mutable state.
type Job[T any] func() (T, error)

// Outcome is one job's slot in the result slice: the value it returned,
// or the error (possibly a *PanicError) that ended it.
type Outcome[T any] struct {
	// Index is the job's position in the input slice.
	Index int
	// Value is the job's return value (zero when Err is set).
	Value T
	// Err is the job's error; a recovered panic surfaces as *PanicError.
	Err error
}

// PanicError is a per-job panic converted into an error so the rest of
// the batch keeps running.
type PanicError struct {
	// Index is the panicking job's position in the input slice.
	Index int
	// Value is the value passed to panic.
	Value any
	// Stack is the panicking goroutine's stack trace.
	Stack []byte
}

// Error describes the recovered panic.
func (e *PanicError) Error() string {
	return fmt.Sprintf("campaign: job %d panicked: %v", e.Index, e.Value)
}

// Options configure one batch.
type Options[T any] struct {
	// Workers is the pool size; ≤0 means runtime.GOMAXPROCS(0).
	Workers int
	// Observer receives progress events (nil = none). Calls are
	// serialized by the pool, so observers need no locking.
	Observer Observer
	// Virtual extracts a completed job's simulated virtual time, credited
	// to Progress.Virtual for throughput reporting (nil = no credit).
	Virtual func(T) sim.Time
}

// Do executes jobs across a worker pool and returns their outcomes in
// input order. It blocks until every job finished; a panicking or failing
// job only marks its own slot.
func Do[T any](jobs []Job[T], opts Options[T]) []Outcome[T] {
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}
	out := make([]Outcome[T], len(jobs))
	if len(jobs) == 0 {
		return out
	}

	tr := newTracker(len(jobs), opts.Observer)
	indices := make(chan int)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range indices {
				tr.started(i)
				out[i] = runOne(i, jobs[i])
				var virtual sim.Time
				if opts.Virtual != nil && out[i].Err == nil {
					virtual = opts.Virtual(out[i].Value)
				}
				tr.finished(i, out[i].Err, virtual)
			}
		}()
	}
	for i := range jobs {
		indices <- i
	}
	close(indices)
	wg.Wait()
	tr.done()
	return out
}

// runOne executes one job under the Protect panic discipline. Each
// worker writes only its own result slot, so the slice needs no locking.
func runOne[T any](i int, job Job[T]) (out Outcome[T]) {
	out.Index = i
	out.Err = Protect(i, func() error {
		var err error
		out.Value, err = job()
		return err
	})
	return out
}

// Values unpacks outcomes into a value slice, returning the first error
// (by input order) if any job failed.
func Values[T any](outs []Outcome[T]) ([]T, error) {
	vals := make([]T, len(outs))
	for i, o := range outs {
		if o.Err != nil {
			return nil, fmt.Errorf("campaign: job %d: %w", o.Index, o.Err)
		}
		vals[i] = o.Value
	}
	return vals, nil
}

// Progress is a snapshot of a batch in flight.
type Progress struct {
	// Total is the number of jobs in the batch.
	Total int
	// Started counts jobs handed to a worker.
	Started int
	// Completed counts finished jobs, successful or not.
	Completed int
	// Failed counts finished jobs that returned an error.
	Failed int
	// Wall is the elapsed wall-clock time since Do began.
	Wall time.Duration
	// Virtual is the total simulated virtual time of successful jobs
	// (zero unless Options.Virtual is set).
	Virtual sim.Time
}

// RunsPerSec returns completed jobs per wall-clock second.
func (p Progress) RunsPerSec() float64 {
	if p.Wall <= 0 {
		return 0
	}
	return float64(p.Completed) / p.Wall.Seconds()
}

// Speedup returns virtual seconds simulated per wall-clock second — the
// figure of merit for a simulation campaign (0 unless virtual time is
// tracked).
func (p Progress) Speedup() float64 {
	if p.Wall <= 0 {
		return 0
	}
	return p.Virtual.Seconds() / p.Wall.Seconds()
}

// tracker serializes progress accounting and observer callbacks.
type tracker struct {
	mu    sync.Mutex
	p     Progress
	t0    time.Time
	obs   Observer
	clock func() time.Duration
}

func newTracker(total int, obs Observer) *tracker {
	t0 := time.Now()
	return &tracker{
		p:     Progress{Total: total},
		t0:    t0,
		obs:   obs,
		clock: func() time.Duration { return time.Since(t0) },
	}
}

func (t *tracker) started(i int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.p.Started++
	t.p.Wall = t.clock()
	if t.obs != nil {
		t.obs.JobStarted(i, t.p)
	}
}

func (t *tracker) finished(i int, err error, virtual sim.Time) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.p.Completed++
	if err != nil {
		t.p.Failed++
	}
	t.p.Virtual += virtual
	t.p.Wall = t.clock()
	if t.obs != nil {
		t.obs.JobDone(i, err, t.p)
	}
}

func (t *tracker) done() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.p.Wall = t.clock()
	if t.obs != nil {
		t.obs.BatchDone(t.p)
	}
}
