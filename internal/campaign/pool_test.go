package campaign

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestPoolRunsEverything(t *testing.T) {
	p := NewPool(4, 8)
	var n atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 100; i++ {
		wg.Add(1)
		if err := p.SubmitCtx(context.Background(), func() {
			defer wg.Done()
			n.Add(1)
		}); err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	wg.Wait()
	p.Close()
	if n.Load() != 100 {
		t.Fatalf("ran %d tasks, want 100", n.Load())
	}
	if p.Completed() != 100 {
		t.Fatalf("Completed() = %d, want 100", p.Completed())
	}
}

func TestPoolTrySubmitBackpressure(t *testing.T) {
	p := NewPool(1, 1)
	defer p.Close()
	block := make(chan struct{})
	started := make(chan struct{})
	// Occupy the single worker…
	if !p.TrySubmit(func() { close(started); <-block }) {
		t.Fatal("first submit rejected")
	}
	<-started
	// …fill the single queue slot…
	if !p.TrySubmit(func() {}) {
		t.Fatal("queue-filling submit rejected")
	}
	// …and the next admission must bounce.
	if p.TrySubmit(func() {}) {
		t.Fatal("submit accepted with a full queue")
	}
	if d := p.QueueDepth(); d != 1 {
		t.Fatalf("QueueDepth = %d, want 1", d)
	}
	if a := p.Active(); a != 1 {
		t.Fatalf("Active = %d, want 1", a)
	}
	close(block)
}

func TestPoolSubmitCtxHonorsContext(t *testing.T) {
	p := NewPool(1, 1)
	defer p.Close()
	block := make(chan struct{})
	defer close(block)
	started := make(chan struct{})
	p.TrySubmit(func() { close(started); <-block })
	<-started
	p.TrySubmit(func() {}) // fills the queue
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if err := p.SubmitCtx(ctx, func() {}); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("SubmitCtx on full queue = %v, want deadline exceeded", err)
	}
}

// TestPoolSubmitCtxCountsQueued pins the queued-counter accounting:
// SubmitCtx's send path must increment the depth just like TrySubmit, or
// the worker-side decrement underflows the counter and QueueDepth drifts
// negative — silently disarming sweep admission control, the Retry-After
// backlog estimate, and /metrics.
func TestPoolSubmitCtxCountsQueued(t *testing.T) {
	p := NewPool(1, 8)
	block := make(chan struct{})
	started := make(chan struct{})
	p.TrySubmit(func() { close(started); <-block })
	<-started // the worker now owns the blocking task; queue is empty
	for i := 0; i < 3; i++ {
		if err := p.SubmitCtx(context.Background(), func() {}); err != nil {
			t.Fatalf("SubmitCtx %d: %v", i, err)
		}
	}
	if d := p.QueueDepth(); d != 3 {
		t.Fatalf("QueueDepth after 3 SubmitCtx = %d, want 3", d)
	}
	close(block)
	p.Close()
	if d := p.QueueDepth(); d != 0 {
		t.Fatalf("QueueDepth after drain = %d, want 0", d)
	}
}

func TestPoolCloseDrainsAndRejects(t *testing.T) {
	p := NewPool(1, 4)
	var ran atomic.Int64
	gate := make(chan struct{})
	started := make(chan struct{})
	p.TrySubmit(func() { close(started); <-gate; ran.Add(1) })
	<-started
	for i := 0; i < 3; i++ {
		if !p.TrySubmit(func() { ran.Add(1) }) {
			t.Fatalf("queued submit %d rejected", i)
		}
	}
	closed := make(chan struct{})
	go func() { p.Close(); close(closed) }()
	select {
	case <-closed:
		t.Fatal("Close returned while a task was still running")
	case <-time.After(20 * time.Millisecond):
	}
	close(gate)
	<-closed
	if ran.Load() != 4 {
		t.Fatalf("drained %d tasks, want all 4 accepted before Close", ran.Load())
	}
	if p.TrySubmit(func() {}) {
		t.Fatal("TrySubmit accepted after Close")
	}
	if err := p.SubmitCtx(context.Background(), func() {}); !errors.Is(err, ErrPoolClosed) {
		t.Fatalf("SubmitCtx after Close = %v, want ErrPoolClosed", err)
	}
}

func TestPoolCloseUnblocksPendingSubmit(t *testing.T) {
	p := NewPool(1, 1)
	block := make(chan struct{})
	defer close(block)
	started := make(chan struct{})
	p.TrySubmit(func() { close(started); <-block })
	<-started
	p.TrySubmit(func() {})
	errc := make(chan error, 1)
	go func() { errc <- p.SubmitCtx(context.Background(), func() {}) }()
	// Give the sender a moment to block on the full queue, then close.
	time.Sleep(10 * time.Millisecond)
	go p.Close()
	if err := <-errc; !errors.Is(err, ErrPoolClosed) {
		t.Fatalf("pending SubmitCtx after Close = %v, want ErrPoolClosed", err)
	}
}

func TestPoolSurvivesPanickingTask(t *testing.T) {
	p := NewPool(1, 2)
	defer p.Close()
	done := make(chan struct{})
	p.TrySubmit(func() { panic("boom") })
	if !p.TrySubmit(func() { close(done) }) {
		t.Fatal("submit after panic rejected")
	}
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("worker died with the panicking task")
	}
}

func TestProtectConvertsPanic(t *testing.T) {
	err := Protect(7, func() error { panic("kaput") })
	var pe *PanicError
	if !errors.As(err, &pe) || pe.Index != 7 || pe.Value != "kaput" {
		t.Fatalf("Protect = %v, want PanicError{7, kaput}", err)
	}
	if err := Protect(0, func() error { return nil }); err != nil {
		t.Fatalf("Protect of clean fn = %v", err)
	}
	sentinel := errors.New("plain")
	if err := Protect(0, func() error { return sentinel }); !errors.Is(err, sentinel) {
		t.Fatalf("Protect swallowed a plain error: %v", err)
	}
}

// TestPoolSubmitCtxNeverAdmitsAfterCloseBegan pins the admission race:
// a select's first poll picks uniformly among ready cases, so a
// SubmitCtx call that reached the send with queue space free after Close
// had already closed p.closing could win the send case and admit a task
// after "further submissions fail" took effect. The submitGate hook
// holds that window open deterministically: the sender is registered but
// has not reached the select when Close completes, so any nil return (or
// any execution of the task) is the bug. Pre-fix this fails within a few
// of the 64 iterations; post-fix the retraction makes it deterministic.
func TestPoolSubmitCtxNeverAdmitsAfterCloseBegan(t *testing.T) {
	for i := 0; i < 64; i++ {
		p := NewPool(1, 4) // queue space free: the send case is ready
		atGate := make(chan struct{})
		goahead := make(chan struct{})
		p.submitGate = func() { close(atGate); <-goahead }

		var late atomic.Bool
		errc := make(chan error, 1)
		go func() {
			errc <- p.SubmitCtx(context.Background(), func() { late.Store(true) })
		}()
		<-atGate // the sender is registered, not yet at the select

		closed := make(chan struct{})
		go func() { p.Close(); close(closed) }()
		<-p.closing    // Close has begun: the submission must now fail
		close(goahead) // release the sender into the racy select

		if err := <-errc; !errors.Is(err, ErrPoolClosed) {
			t.Fatalf("iter %d: SubmitCtx after Close began = %v, want ErrPoolClosed", i, err)
		}
		<-closed
		if late.Load() {
			t.Fatalf("iter %d: task admitted after Close began was executed", i)
		}
	}
}
