package campaign

import (
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"

	"videodvfs/internal/sim"
)

func squareJobs(n int) []Job[int] {
	jobs := make([]Job[int], n)
	for i := 0; i < n; i++ {
		i := i
		jobs[i] = func() (int, error) { return i * i, nil }
	}
	return jobs
}

func TestDoPreservesOrder(t *testing.T) {
	for _, workers := range []int{0, 1, 3, 8, 100} {
		outs := Do(squareJobs(37), Options[int]{Workers: workers})
		if len(outs) != 37 {
			t.Fatalf("workers=%d: got %d outcomes", workers, len(outs))
		}
		for i, o := range outs {
			if o.Index != i || o.Err != nil || o.Value != i*i {
				t.Fatalf("workers=%d slot %d: %+v", workers, i, o)
			}
		}
	}
}

func TestDoEmptyBatch(t *testing.T) {
	if outs := Do(nil, Options[int]{}); len(outs) != 0 {
		t.Fatalf("empty batch produced %d outcomes", len(outs))
	}
}

func TestDoRecoversPanics(t *testing.T) {
	jobs := squareJobs(9)
	jobs[4] = func() (int, error) { panic("boom") }
	outs := Do(jobs, Options[int]{Workers: 4})
	for i, o := range outs {
		if i == 4 {
			var pe *PanicError
			if !errors.As(o.Err, &pe) {
				t.Fatalf("slot 4: want *PanicError, got %v", o.Err)
			}
			if pe.Index != 4 || pe.Value != "boom" || len(pe.Stack) == 0 {
				t.Fatalf("panic detail wrong: %+v", pe)
			}
			if !strings.Contains(pe.Error(), "job 4 panicked: boom") {
				t.Fatalf("panic message wrong: %v", pe)
			}
			continue
		}
		if o.Err != nil || o.Value != i*i {
			t.Fatalf("healthy slot %d corrupted: %+v", i, o)
		}
	}
}

func TestDoErrorsStayPerSlot(t *testing.T) {
	sentinel := errors.New("bad config")
	jobs := squareJobs(5)
	jobs[2] = func() (int, error) { return 0, sentinel }
	outs := Do(jobs, Options[int]{Workers: 2})
	if !errors.Is(outs[2].Err, sentinel) {
		t.Fatalf("slot 2: want sentinel, got %v", outs[2].Err)
	}
	if _, err := Values(outs); !errors.Is(err, sentinel) {
		t.Fatalf("Values should surface the first error, got %v", err)
	}
	outs[2].Err = nil
	vals, err := Values(outs)
	if err != nil || len(vals) != 5 {
		t.Fatalf("Values on clean outcomes: %v %v", vals, err)
	}
}

// countingObserver checks event accounting and serialization.
type countingObserver struct {
	started, done, failed int32
	batchDone             int32
	final                 Progress
}

func (c *countingObserver) JobStarted(int, Progress) { atomic.AddInt32(&c.started, 1) }
func (c *countingObserver) JobDone(_ int, err error, _ Progress) {
	atomic.AddInt32(&c.done, 1)
	if err != nil {
		atomic.AddInt32(&c.failed, 1)
	}
}
func (c *countingObserver) BatchDone(p Progress) {
	atomic.AddInt32(&c.batchDone, 1)
	c.final = p
}

func TestObserverEventsAndProgress(t *testing.T) {
	jobs := squareJobs(20)
	jobs[7] = func() (int, error) { return 0, errors.New("x") }
	obs := &countingObserver{}
	Do(jobs, Options[int]{
		Workers:  4,
		Observer: obs,
		Virtual:  func(v int) sim.Time { return sim.Second },
	})
	if obs.started != 20 || obs.done != 20 || obs.failed != 1 || obs.batchDone != 1 {
		t.Fatalf("event counts wrong: %+v", obs)
	}
	p := obs.final
	if p.Total != 20 || p.Started != 20 || p.Completed != 20 || p.Failed != 1 {
		t.Fatalf("final progress wrong: %+v", p)
	}
	// 19 successful jobs × 1 virtual second; the failed job earns none.
	if p.Virtual != 19*sim.Second {
		t.Fatalf("virtual time %v, want 19s", p.Virtual)
	}
	if p.Wall < 0 || p.RunsPerSec() < 0 || p.Speedup() < 0 {
		t.Fatalf("throughput metrics negative: %+v", p)
	}
}

func TestProgressRates(t *testing.T) {
	p := Progress{Completed: 50, Wall: 2e9, Virtual: 600 * sim.Second}
	if got := p.RunsPerSec(); got != 25 {
		t.Fatalf("RunsPerSec = %v, want 25", got)
	}
	if got := p.Speedup(); got != 300 {
		t.Fatalf("Speedup = %v, want 300", got)
	}
	var zero Progress
	if zero.RunsPerSec() != 0 || zero.Speedup() != 0 {
		t.Fatal("zero progress should report zero rates")
	}
}

func TestLogObserverOutput(t *testing.T) {
	var b strings.Builder
	obs := &LogObserver{W: &b, Every: 2}
	jobs := squareJobs(4)
	jobs[0] = func() (int, error) { return 0, errors.New("nope") }
	Do(jobs, Options[int]{Workers: 1, Observer: obs})
	out := b.String()
	for _, want := range []string{"run 0 failed: nope", "2/4 done", "4/4 done", "campaign: done 4 runs (1 failed)"} {
		if !strings.Contains(out, want) {
			t.Fatalf("log output missing %q:\n%s", want, out)
		}
	}
}

func TestNopObserver(t *testing.T) {
	// Must be safe to use and do nothing.
	Do(squareJobs(3), Options[int]{Observer: NopObserver{}})
}

func TestDoDeterministicAcrossWorkerCounts(t *testing.T) {
	build := func() []Job[string] {
		jobs := make([]Job[string], 24)
		for i := range jobs {
			i := i
			jobs[i] = func() (string, error) {
				// Deterministic per-job work: a tiny RNG stream keyed by
				// the job index, as real runs key theirs by seed.
				r := sim.Stream(int64(i), "campaign/test")
				return fmt.Sprintf("%d:%v", i, r.Float64()), nil
			}
		}
		return jobs
	}
	serial := Do(build(), Options[string]{Workers: 1})
	wide := Do(build(), Options[string]{Workers: 16})
	for i := range serial {
		if serial[i] != wide[i] {
			t.Fatalf("slot %d diverged: %+v vs %+v", i, serial[i], wide[i])
		}
	}
}
