package campaign

import (
	"fmt"
	"io"
)

// Observer receives progress events from a batch. The pool serializes all
// calls, so implementations need no locking. Callbacks run on worker
// goroutines and should return quickly.
type Observer interface {
	// JobStarted fires when a worker picks up job i.
	JobStarted(i int, p Progress)
	// JobDone fires when job i finishes; err is nil on success and a
	// *PanicError when the job panicked.
	JobDone(i int, err error, p Progress)
	// BatchDone fires once after every job finished.
	BatchDone(p Progress)
}

// NopObserver ignores every event.
type NopObserver struct{}

// JobStarted implements Observer.
func (NopObserver) JobStarted(int, Progress) {}

// JobDone implements Observer.
func (NopObserver) JobDone(int, error, Progress) {}

// BatchDone implements Observer.
func (NopObserver) BatchDone(Progress) {}

// LogObserver prints progress lines to a writer: one line every Every
// completions (and on failures), plus a summary line at the end.
type LogObserver struct {
	// W receives the progress lines.
	W io.Writer
	// Every is the completion interval between lines (≤0 = every 10).
	Every int
}

// JobStarted implements Observer.
func (o *LogObserver) JobStarted(int, Progress) {}

// JobDone implements Observer.
func (o *LogObserver) JobDone(i int, err error, p Progress) {
	every := o.Every
	if every <= 0 {
		every = 10
	}
	if err != nil {
		fmt.Fprintf(o.W, "campaign: run %d failed: %v\n", i, err)
		return
	}
	if p.Completed%every == 0 || p.Completed == p.Total {
		o.line(p)
	}
}

// BatchDone implements Observer.
func (o *LogObserver) BatchDone(p Progress) {
	// Jobs without a Virtual extractor accumulate no virtual time; skip
	// the meaningless "0 virtual-s/wall-s" in that case.
	if p.Virtual > 0 {
		fmt.Fprintf(o.W, "campaign: done %d runs (%d failed) in %.1fs — %.1f runs/s, %.0f virtual-s/wall-s\n",
			p.Completed, p.Failed, p.Wall.Seconds(), p.RunsPerSec(), p.Speedup())
		return
	}
	fmt.Fprintf(o.W, "campaign: done %d runs (%d failed) in %.1fs — %.1f runs/s\n",
		p.Completed, p.Failed, p.Wall.Seconds(), p.RunsPerSec())
}

func (o *LogObserver) line(p Progress) {
	fmt.Fprintf(o.W, "campaign: %d/%d done (%d failed) %.1fs %.1f runs/s\n",
		p.Completed, p.Total, p.Failed, p.Wall.Seconds(), p.RunsPerSec())
}
